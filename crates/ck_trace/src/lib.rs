//! # ck_trace — post-mortem analysis of Chare Kernel traces
//!
//! A miniature of *Projections*, the performance-analysis tool that grew
//! out of the Chare Kernel ecosystem. The kernel's event log
//! ([`chare_kernel::trace`]) tells us *what* each PE did (entry begins
//! and ends, message sends and receives, seed-balancing decisions,
//! retransmits, queue depths); the simulator's span timeline tells us
//! *when* and for *how long*. This crate joins the two into the views
//! Projections is known for:
//!
//! * [`RunTrace::attribution`] — where did the PE-seconds go? work vs.
//!   scheduler dispatch vs. runtime control traffic vs. idle;
//! * [`RunTrace::entry_breakdown`] — per-entry-method time totals, the
//!   "profile view";
//! * [`RunTrace::grain_histogram`] — log₂ histogram of entry grain
//!   sizes, the quantity the paper's grain-size discussion is about;
//! * [`RunTrace::comm_matrix`] — PE×PE message/byte matrix;
//! * [`RunTrace::critical_path`] — a lower bound on achievable
//!   completion time, for "how much faster could this possibly get";
//! * [`RunTrace::to_chrome_trace`] — Chrome trace-event JSON loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! All analyses are pure functions of a [`RunTrace`], which is extracted
//! from a finished [`CkReport`] with [`RunTrace::from_report`].

use std::collections::HashMap;

use chare_kernel::trace::{EntryWhat, EventKind, TraceEvent};
use chare_kernel::CkReport;
use multicomputer::{CostModel, StepKind, TraceSpan};

pub mod json_lint;
pub mod timeline;

mod chrome;

pub use timeline::{IntervalRow, TimeProfile};

/// Everything the analyzer needs from one finished run: the kernel event
/// log joined with the simulator's execution-span timeline.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// PEs in the run.
    pub npes: usize,
    /// Completion time, simulated ns.
    pub end_ns: u64,
    /// Scheduler dispatch overhead charged per user step (from the cost
    /// model), used to split span time into work vs. dispatch.
    pub dispatch_ns: u64,
    /// Dispatch overhead of control-only steps.
    pub ctl_dispatch_ns: u64,
    /// Execution spans from the simulator (`SimConfig::with_trace`).
    pub spans: Vec<TraceSpan>,
    /// Kernel events (`ProgramBuilder::tracing`).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overflow.
    pub dropped: u64,
}

/// Per-PE time attribution, all in simulated ns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeAttribution {
    /// Useful entry-method execution time (user spans minus dispatch).
    pub work_ns: u64,
    /// Scheduler pick-and-dispatch overhead of user steps.
    pub dispatch_ns: u64,
    /// Time in control-only steps (load reports, quiescence waves,
    /// acks — the runtime talking to itself).
    pub control_ns: u64,
    /// Time with nothing to run.
    pub idle_ns: u64,
}

impl PeAttribution {
    fn busy_ns(&self) -> u64 {
        self.work_ns + self.dispatch_ns + self.control_ns
    }
}

/// Where the PE-seconds of a run went — the overhead-attribution view.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// One row per PE.
    pub per_pe: Vec<PeAttribution>,
    /// Sum over PEs.
    pub total: PeAttribution,
}

impl Attribution {
    /// Fraction helpers over total PE-time (`npes * end_ns`).
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let denom = (self.total.busy_ns() + self.total.idle_ns).max(1) as f64;
        (
            self.total.work_ns as f64 / denom,
            self.total.dispatch_ns as f64 / denom,
            self.total.control_ns as f64 / denom,
            self.total.idle_ns as f64 / denom,
        )
    }
}

/// Aggregate statistics for one entry method (the "profile view" row).
#[derive(Clone, Debug)]
pub struct EntryRow {
    /// Human-readable label, e.g. `create:k2`, `chare:ep0`, `boc1:ep3`.
    pub label: String,
    /// Executions observed.
    pub count: u64,
    /// Total span time, ns.
    pub total_ns: u64,
    /// Shortest execution.
    pub min_ns: u64,
    /// Longest execution.
    pub max_ns: u64,
}

impl EntryRow {
    /// Mean execution time, ns.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns / self.count.max(1)
    }
}

/// Log₂ histogram of user-step grain sizes.
#[derive(Clone, Debug, Default)]
pub struct GrainHistogram {
    /// `(lo_ns, hi_ns, count)` per power-of-two bucket; only buckets up
    /// to the largest observed grain are present.
    pub buckets: Vec<(u64, u64, u64)>,
    /// Number of user steps observed.
    pub count: u64,
    /// Median grain, ns.
    pub median_ns: u64,
    /// Mean grain, ns.
    pub mean_ns: u64,
    /// Largest grain, ns.
    pub max_ns: u64,
}

/// PE×PE communication matrix built from `MsgSend` events.
#[derive(Clone, Debug)]
pub struct CommMatrix {
    /// Matrix dimension.
    pub npes: usize,
    /// `msgs[src][dst]` — messages sent from `src` to `dst`.
    pub msgs: Vec<Vec<u64>>,
    /// `bytes[src][dst]` — payload bytes from `src` to `dst`.
    pub bytes: Vec<Vec<u64>>,
}

impl CommMatrix {
    /// Total messages in the matrix.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().flatten().sum()
    }

    /// Fraction of messages that left their source PE.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_msgs();
        if total == 0 {
            return 0.0;
        }
        let local: u64 = (0..self.npes).map(|p| self.msgs[p][p]).sum();
        (total - local) as f64 / total as f64
    }

    /// Render as a text table (message counts).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("src\\dst");
        for d in 0..self.npes {
            out.push_str(&format!(" {d:>6}"));
        }
        out.push('\n');
        for (s, row) in self.msgs.iter().enumerate() {
            out.push_str(&format!("{s:>7}"));
            for &v in row {
                out.push_str(&format!(" {v:>6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Lower bounds on achievable completion time.
#[derive(Clone, Copy, Debug)]
pub struct CriticalPath {
    /// Observed completion time.
    pub end_ns: u64,
    /// Busiest single PE (a run can never beat its own busiest PE
    /// without rebalancing).
    pub max_pe_busy_ns: u64,
    /// Longest single entry execution (sequential grain floor).
    pub max_span_ns: u64,
    /// Total busy time across PEs.
    pub total_busy_ns: u64,
    /// `max(total/P, longest span)` — the work/depth lower bound.
    pub lower_bound_ns: u64,
}

impl CriticalPath {
    /// How close the run came to its lower bound (1.0 = optimal).
    pub fn efficiency(&self) -> f64 {
        if self.end_ns == 0 {
            return 1.0;
        }
        self.lower_bound_ns as f64 / self.end_ns as f64
    }
}

impl RunTrace {
    /// Extract a `RunTrace` from a finished simulator run. Requires both
    /// kernel tracing (`ProgramBuilder::tracing`) and simulator span
    /// tracing (`SimConfig::with_trace`); returns `None` if either is
    /// missing or the run was not simulated.
    pub fn from_report(report: &CkReport, cost: &CostModel) -> Option<RunTrace> {
        let log = report.trace.as_ref()?;
        let sim = report.sim.as_ref()?;
        Some(RunTrace {
            npes: log.npes,
            end_ns: sim.end_time.as_nanos(),
            dispatch_ns: cost.dispatch.as_nanos(),
            ctl_dispatch_ns: cost.ctl_dispatch.as_nanos(),
            spans: sim.timeline.clone(),
            events: log.events.clone(),
            dropped: log.dropped,
        })
    }

    /// Split every PE's timeline into work / dispatch / control / idle.
    pub fn attribution(&self) -> Attribution {
        let mut per_pe = vec![PeAttribution::default(); self.npes];
        for span in &self.spans {
            let pe = span.pe.index();
            if pe >= self.npes {
                continue;
            }
            let dur = span.end_ns.saturating_sub(span.start_ns);
            match span.kind {
                StepKind::User => {
                    let d = self.dispatch_ns.min(dur);
                    per_pe[pe].dispatch_ns += d;
                    per_pe[pe].work_ns += dur - d;
                }
                StepKind::Control => per_pe[pe].control_ns += dur,
            }
        }
        for a in &mut per_pe {
            a.idle_ns = self.end_ns.saturating_sub(a.busy_ns());
        }
        let mut total = PeAttribution::default();
        for a in &per_pe {
            total.work_ns += a.work_ns;
            total.dispatch_ns += a.dispatch_ns;
            total.control_ns += a.control_ns;
            total.idle_ns += a.idle_ns;
        }
        Attribution { per_pe, total }
    }

    /// Join `EntryBegin` events to user spans. On the simulator a
    /// handler's `now_ns()` equals the span's start, so `(pe, start_ns)`
    /// is the join key.
    fn entry_labels(&self) -> HashMap<(u32, u64), String> {
        let mut labels = HashMap::new();
        for ev in &self.events {
            if let EventKind::EntryBegin { what, ep } = ev.kind {
                labels.insert((ev.pe.0, ev.at_ns), entry_label(what, ep));
            }
        }
        labels
    }

    /// Per-entry-method execution statistics, sorted by total time
    /// descending — the Projections "profile view".
    pub fn entry_breakdown(&self) -> Vec<EntryRow> {
        let labels = self.entry_labels();
        let mut rows: HashMap<String, EntryRow> = HashMap::new();
        for span in &self.spans {
            if span.kind != StepKind::User {
                continue;
            }
            let dur = span.end_ns.saturating_sub(span.start_ns);
            let label = labels
                .get(&(span.pe.0, span.start_ns))
                .cloned()
                .unwrap_or_else(|| "user:?".to_string());
            let row = rows.entry(label.clone()).or_insert(EntryRow {
                label,
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            row.count += 1;
            row.total_ns += dur;
            row.min_ns = row.min_ns.min(dur);
            row.max_ns = row.max_ns.max(dur);
        }
        let mut out: Vec<EntryRow> = rows.into_values().collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(&b.label)));
        out
    }

    /// Log₂ histogram of user-step durations.
    pub fn grain_histogram(&self) -> GrainHistogram {
        let mut durs: Vec<u64> = self
            .spans
            .iter()
            .filter(|s| s.kind == StepKind::User)
            .map(|s| s.end_ns.saturating_sub(s.start_ns))
            .collect();
        if durs.is_empty() {
            return GrainHistogram::default();
        }
        durs.sort_unstable();
        let count = durs.len() as u64;
        let max_ns = *durs.last().unwrap();
        let median_ns = durs[durs.len() / 2];
        let mean_ns = durs.iter().sum::<u64>() / count;
        // Bucket b covers [2^b, 2^(b+1)) ns; bucket 0 also holds 0ns.
        let top = 64 - max_ns.max(1).leading_zeros() as usize;
        let mut counts = vec![0u64; top + 1];
        for &d in &durs {
            let b = if d <= 1 {
                0
            } else {
                63 - d.leading_zeros() as usize
            };
            counts[b.min(top)] += 1;
        }
        let buckets = counts
            .iter()
            .enumerate()
            .map(|(b, &c)| (1u64 << b, 1u64 << (b + 1), c))
            .collect();
        GrainHistogram {
            buckets,
            count,
            median_ns,
            mean_ns,
            max_ns,
        }
    }

    /// PE×PE message/byte matrix from `MsgSend` events.
    pub fn comm_matrix(&self) -> CommMatrix {
        let n = self.npes;
        let mut msgs = vec![vec![0u64; n]; n];
        let mut bytes = vec![vec![0u64; n]; n];
        for ev in &self.events {
            if let EventKind::MsgSend {
                to, bytes: sz, ..
            } = ev.kind
            {
                let (s, d) = (ev.pe.index(), to.index());
                if s < n && d < n {
                    msgs[s][d] += 1;
                    bytes[s][d] += sz as u64;
                }
            }
        }
        CommMatrix { npes: n, msgs, bytes }
    }

    /// Work/depth lower bound on completion time.
    pub fn critical_path(&self) -> CriticalPath {
        let mut pe_busy = vec![0u64; self.npes];
        let mut max_span = 0u64;
        for span in &self.spans {
            let dur = span.end_ns.saturating_sub(span.start_ns);
            if span.pe.index() < self.npes {
                pe_busy[span.pe.index()] += dur;
            }
            max_span = max_span.max(dur);
        }
        let total_busy: u64 = pe_busy.iter().sum();
        let avg = if self.npes == 0 {
            0
        } else {
            total_busy.div_ceil(self.npes as u64)
        };
        CriticalPath {
            end_ns: self.end_ns,
            max_pe_busy_ns: pe_busy.iter().copied().max().unwrap_or(0),
            max_span_ns: max_span,
            total_busy_ns: total_busy,
            lower_bound_ns: avg.max(max_span),
        }
    }

    /// Export as Chrome trace-event JSON (load at
    /// <https://ui.perfetto.dev> or `chrome://tracing`).
    pub fn to_chrome_trace(&self) -> String {
        chrome::export(self)
    }

    /// A warning line when the trace ring overflowed and this analysis
    /// is therefore based on an incomplete event log, or `None` if every
    /// event was retained. Views that print attribution or profiles
    /// must surface this — a silently-truncated analysis reads as
    /// authoritative when it is not.
    pub fn truncation_warning(&self) -> Option<String> {
        if self.dropped == 0 {
            return None;
        }
        Some(format!(
            "WARNING: trace ring overflowed; {} events dropped — event-derived \
             views (entries, comm matrix) undercount; raise TraceConfig::capacity",
            self.dropped
        ))
    }
}

/// Human label for one entry execution.
fn entry_label(what: EntryWhat, ep: Option<chare_kernel::EpId>) -> String {
    match (what, ep) {
        (EntryWhat::Create(kind), _) => format!("create:k{}", kind.0),
        (EntryWhat::Chare(_), Some(ep)) => format!("chare:ep{}", ep.0),
        (EntryWhat::Chare(_), None) => "chare:?".to_string(),
        (EntryWhat::Branch(boc), Some(ep)) => format!("boc{}:ep{}", boc.0, ep.0),
        (EntryWhat::Branch(boc), None) => format!("boc{}:?", boc.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chare_kernel::ids::{BocId, ChareKind, EpId};
    use multicomputer::Pe;

    fn span(pe: u32, start: u64, end: u64, kind: StepKind) -> TraceSpan {
        TraceSpan {
            pe: Pe(pe),
            start_ns: start,
            end_ns: end,
            kind,
        }
    }

    fn ev(pe: u32, at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at_ns: at,
            pe: Pe(pe),
            kind,
        }
    }

    fn begin(what: EntryWhat, ep: Option<EpId>) -> EventKind {
        EventKind::EntryBegin { what, ep }
    }

    /// Two PEs: PE0 runs two user steps (1000ns each, 100ns dispatch),
    /// PE1 one control step of 50ns; run ends at 4000ns.
    fn synthetic() -> RunTrace {
        RunTrace {
            npes: 2,
            end_ns: 4000,
            dispatch_ns: 100,
            ctl_dispatch_ns: 20,
            spans: vec![
                span(0, 0, 1000, StepKind::User),
                span(0, 1000, 2000, StepKind::User),
                span(1, 0, 50, StepKind::Control),
            ],
            events: vec![
                ev(0, 0, begin(EntryWhat::Create(ChareKind(3)), None)),
                ev(
                    0,
                    1000,
                    begin(EntryWhat::Branch(BocId(1)), Some(EpId(2))),
                ),
                ev(
                    0,
                    500,
                    EventKind::MsgSend {
                        to: Pe(1),
                        class: chare_kernel::MsgClass::Chare,
                        bytes: 64,
                        hops: 1,
                    },
                ),
                ev(
                    0,
                    600,
                    EventKind::MsgSend {
                        to: Pe(0),
                        class: chare_kernel::MsgClass::Seed,
                        bytes: 16,
                        hops: 0,
                    },
                ),
                ev(1, 700, EventKind::QueueSample { len: 3 }),
                ev(
                    1,
                    800,
                    EventKind::Retransmit { to: Pe(0), seq: 7 },
                ),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn attribution_splits_work_dispatch_control_idle() {
        let a = synthetic().attribution();
        assert_eq!(a.per_pe[0].work_ns, 1800);
        assert_eq!(a.per_pe[0].dispatch_ns, 200);
        assert_eq!(a.per_pe[0].control_ns, 0);
        assert_eq!(a.per_pe[0].idle_ns, 2000);
        assert_eq!(a.per_pe[1].control_ns, 50);
        assert_eq!(a.per_pe[1].idle_ns, 3950);
        // Per-PE rows tile the full run exactly.
        for pe in &a.per_pe {
            assert_eq!(
                pe.work_ns + pe.dispatch_ns + pe.control_ns + pe.idle_ns,
                4000
            );
        }
        let (w, d, c, i) = a.fractions();
        assert!((w + d + c + i - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attribution_caps_dispatch_at_span_length() {
        // A 30ns user span with 100ns nominal dispatch must not
        // underflow into negative work.
        let t = RunTrace {
            spans: vec![span(0, 0, 30, StepKind::User)],
            events: vec![],
            ..synthetic()
        };
        let a = t.attribution();
        assert_eq!(a.per_pe[0].dispatch_ns, 30);
        assert_eq!(a.per_pe[0].work_ns, 0);
    }

    #[test]
    fn entry_breakdown_joins_begin_events_to_spans() {
        let rows = synthetic().entry_breakdown();
        assert_eq!(rows.len(), 2);
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert!(labels.contains(&"create:k3"));
        assert!(labels.contains(&"boc1:ep2"));
        for r in &rows {
            assert_eq!(r.count, 1);
            assert_eq!(r.total_ns, 1000);
            assert_eq!(r.mean_ns(), 1000);
        }
    }

    #[test]
    fn entry_breakdown_unlabelled_span_falls_back() {
        let t = RunTrace {
            events: vec![],
            ..synthetic()
        };
        let rows = t.entry_breakdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "user:?");
        assert_eq!(rows[0].count, 2);
    }

    #[test]
    fn grain_histogram_buckets_by_log2() {
        let g = synthetic().grain_histogram();
        assert_eq!(g.count, 2); // control spans excluded
        assert_eq!(g.median_ns, 1000);
        assert_eq!(g.mean_ns, 1000);
        assert_eq!(g.max_ns, 1000);
        let total: u64 = g.buckets.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(total, 2);
        // 1000ns lands in [512, 1024).
        let b = g.buckets.iter().find(|&&(lo, _, _)| lo == 512).unwrap();
        assert_eq!(b.2, 2);
    }

    #[test]
    fn grain_histogram_empty_trace() {
        let t = RunTrace {
            spans: vec![],
            ..synthetic()
        };
        let g = t.grain_histogram();
        assert_eq!(g.count, 0);
        assert!(g.buckets.is_empty());
    }

    #[test]
    fn comm_matrix_counts_msgs_and_bytes() {
        let m = synthetic().comm_matrix();
        assert_eq!(m.msgs[0][1], 1);
        assert_eq!(m.bytes[0][1], 64);
        assert_eq!(m.msgs[0][0], 1);
        assert_eq!(m.total_msgs(), 2);
        assert!((m.remote_fraction() - 0.5).abs() < 1e-9);
        let text = m.render();
        assert!(text.contains("src\\dst"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn critical_path_bounds_below_end_time() {
        let cp = synthetic().critical_path();
        assert_eq!(cp.max_pe_busy_ns, 2000);
        assert_eq!(cp.max_span_ns, 1000);
        assert_eq!(cp.total_busy_ns, 2050);
        assert_eq!(cp.lower_bound_ns, 1025); // ceil(2050/2) > 1000
        assert!(cp.lower_bound_ns <= cp.end_ns);
        assert!(cp.efficiency() > 0.0 && cp.efficiency() <= 1.0);
    }

    #[test]
    fn truncation_warning_appears_only_on_loss() {
        assert!(synthetic().truncation_warning().is_none());
        let t = RunTrace {
            dropped: 42,
            ..synthetic()
        };
        let warn = t.truncation_warning().unwrap();
        assert!(warn.contains("42 events dropped"), "{warn}");
        // The export must carry the marker and pass the export lint.
        let json = t.to_chrome_trace();
        json_lint::validate_export(&json, t.dropped).unwrap();
        assert!(json.contains("\"dropped\":42"));
        // And a lossless export stays marker-free.
        let clean = synthetic().to_chrome_trace();
        json_lint::validate_export(&clean, 0).unwrap();
        assert!(!clean.contains("\"dropped\""));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let json = synthetic().to_chrome_trace();
        json_lint::validate(&json).expect("export must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"i\"")); // retransmit instant
        assert!(json.contains("\"ph\":\"C\"")); // queue counter
        assert!(json.contains("create:k3"));
        assert!(json.contains("boc1:ep2"));
    }
}
