//! A minimal JSON syntax checker.
//!
//! The trace exporter hand-builds its JSON (no serde in the workspace),
//! so tests and the export smoke path need an independent way to prove
//! the output actually parses. This is a strict recursive-descent
//! validator over the RFC 8259 grammar — it accepts exactly well-formed
//! documents and reports the byte offset of the first error. It builds
//! no value tree; validation only.

/// Check a trace export for well-formedness *and* honesty about loss:
/// when the source ring dropped events (`dropped > 0`), the document
/// must carry a `"dropped"` marker so downstream consumers can tell a
/// truncated timeline from a complete one. A silently-truncated export
/// fails the lint even though it parses.
pub fn validate_export(input: &str, dropped: u64) -> Result<(), String> {
    validate(input)?;
    if dropped > 0 && !input.contains("\"dropped\"") {
        return Err(format!(
            "export silently truncated: {dropped} events were dropped but the \
             document carries no \"dropped\" marker"
        ));
    }
    Ok(())
}

/// Check that `input` is one well-formed JSON document.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected digit after '.'")),
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected exponent digit")),
            }
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            "\"a\\u00e9b\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\\"y\"}",
            " { \"k\" : [ 1 , 2 ] } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn export_lint_requires_truncation_marker() {
        use super::validate_export;
        // No loss: any valid document passes.
        validate_export("{\"traceEvents\":[]}", 0).unwrap();
        // Loss without a marker is a lint failure even though it parses.
        let err = validate_export("{\"traceEvents\":[]}", 5).unwrap_err();
        assert!(err.contains("silently truncated"), "{err}");
        // Loss with the marker passes.
        validate_export("{\"traceEvents\":[],\"dropped\":5}", 5).unwrap();
        // Malformed documents still fail on syntax first.
        assert!(validate_export("{", 0).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "tru",
            "[1] extra",
            "\"bad\\q\"",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }
}
