//! Chrome trace-event JSON export.
//!
//! Emits the legacy JSON array format understood by both
//! `chrome://tracing` and Perfetto: complete (`X`) events for execution
//! spans, instant (`i`) events for one-shot kernel decisions, counter
//! (`C`) events for queue-depth samples and thread-name metadata (`M`)
//! records naming each PE. Timestamps are microseconds (floats), with
//! `pid` 0 and `tid` = PE index, so each PE renders as one timeline row.
//!
//! Hand-rolled string building — the format is flat enough that a JSON
//! library would be overkill, and the workspace deliberately carries no
//! serde dependency.

use chare_kernel::trace::EventKind;
use multicomputer::StepKind;

use crate::RunTrace;

/// Serialize a run into a Chrome trace-event JSON document.
pub fn export(trace: &RunTrace) -> String {
    let labels = trace.entry_labels();
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };

    for pe in 0..trace.npes {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{pe},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"PE {pe}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }

    for span in &trace.spans {
        let dur = span.end_ns.saturating_sub(span.start_ns);
        let (name, cat) = match span.kind {
            StepKind::User => (
                labels
                    .get(&(span.pe.0, span.start_ns))
                    .map(String::as_str)
                    .unwrap_or("user")
                    .to_string(),
                "user",
            ),
            StepKind::Control => ("control".to_string(), "control"),
        };
        push(
            format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"{}\"}}",
                span.pe.index(),
                micros(span.start_ns),
                micros(dur),
                escape(&name),
                cat,
            ),
            &mut out,
            &mut first,
        );
    }

    for ev in &trace.events {
        let (pe, ts) = (ev.pe.index(), micros(ev.at_ns));
        match ev.kind {
            EventKind::SeedKept { kind, hops } => push(
                format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"s\":\"t\",\
                     \"name\":\"seed kept k{} h{}\",\"cat\":\"balance\"}}",
                    kind.0, hops
                ),
                &mut out,
                &mut first,
            ),
            EventKind::SeedForwarded { kind, to, hops } => push(
                format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"s\":\"t\",\
                     \"name\":\"seed k{} -> PE{} h{}\",\"cat\":\"balance\"}}",
                    kind.0,
                    to.index(),
                    hops
                ),
                &mut out,
                &mut first,
            ),
            EventKind::SeedRedirected { to } => push(
                format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"s\":\"t\",\
                     \"name\":\"seed redirect -> PE{}\",\"cat\":\"balance\"}}",
                    to.index()
                ),
                &mut out,
                &mut first,
            ),
            EventKind::Retransmit { to, seq } => push(
                format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"s\":\"t\",\
                     \"name\":\"retransmit #{} -> PE{}\",\"cat\":\"transport\"}}",
                    seq,
                    to.index()
                ),
                &mut out,
                &mut first,
            ),
            EventKind::QueueSample { len } => push(
                format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\
                     \"name\":\"queue PE{pe}\",\"args\":{{\"len\":{len}}}}}"
                ),
                &mut out,
                &mut first,
            ),
            // Per-message send/recv events are summarized by the comm
            // matrix instead; emitting one instant per message would
            // swamp the timeline view.
            _ => {}
        }
    }

    out.push(']');
    // Overflowed ring: mark the export as truncated so consumers (and
    // `json_lint::validate_export`) can tell it apart from a complete
    // timeline.
    if trace.dropped > 0 {
        out.push_str(&format!(",\"dropped\":{}", trace.dropped));
    }
    out.push('}');
    out
}

/// ns → µs with sub-µs precision preserved as a decimal fraction.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1000) {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

/// Minimal JSON string escaping (labels are machine-generated, but keep
/// the exporter safe for any name).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_keeps_sub_microsecond_precision() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(2000), "2");
        assert_eq!(micros(2500), "2.500");
        assert_eq!(micros(1), "0.001");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{01}b"), "a\\u0001b");
    }

    #[test]
    fn empty_trace_exports_empty_event_array_for_zero_pes() {
        let t = RunTrace {
            npes: 0,
            end_ns: 0,
            dispatch_ns: 0,
            ctl_dispatch_ns: 0,
            spans: vec![],
            events: vec![],
            dropped: 0,
        };
        let json = export(&t);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
        crate::json_lint::validate(&json).unwrap();
    }
}
