//! A/B determinism invariants for the host-performance machinery:
//! message pooling, the run memo, and thread-parallel table generation
//! change wall-clock only — never a byte of table output.
//!
//! Tables 1, 2 and 4 cover the three report shapes the optimizations
//! touch: counters + sim detail (Table 1), the speedup sweep with its
//! repeated P=1 baseline (Table 2), and the strategy matrix with
//! imbalance figures (Table 4).

use ck_bench::{runner, Scale, Table};

fn render(tables: &[Table]) -> String {
    tables
        .iter()
        .map(|t| format!("{t}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn tables_124(scale: Scale) -> Vec<Table> {
    vec![
        ck_bench::table1(scale),
        ck_bench::table2(scale),
        ck_bench::table4(scale),
    ]
}

/// The quick-fit message pool recycles envelopes and wire buffers; with
/// it forced off every allocation is fresh. Both modes must produce the
/// same bytes. Run memoization is disabled so each arm really simulates.
#[test]
fn pooled_vs_unpooled_byte_identical() {
    runner::set_caching(false);
    chare_kernel::pool::set_pooling(false);
    let unpooled = render(&tables_124(Scale::Quick));
    chare_kernel::pool::set_pooling(true);
    let pooled = render(&tables_124(Scale::Quick));
    runner::set_caching(true);
    assert_eq!(unpooled, pooled);
}

/// Serving repeated scenarios from the deterministic run memo must give
/// the same bytes as simulating every run fresh.
#[test]
fn run_memo_vs_fresh_byte_identical() {
    runner::set_caching(true);
    let memoized = render(&tables_124(Scale::Quick));
    runner::set_caching(false);
    let fresh = render(&tables_124(Scale::Quick));
    runner::set_caching(true);
    assert_eq!(memoized, fresh);
}

/// Generating tables on worker threads (each with its own thread-local
/// pool and memo) must match the serial rendering byte for byte.
#[test]
fn parallel_vs_serial_byte_identical() {
    let serial = render(&tables_124(Scale::Quick));
    let parallel = std::thread::scope(|s| {
        let t1 = s.spawn(|| format!("{}", ck_bench::table1(Scale::Quick)));
        let t2 = s.spawn(|| format!("{}", ck_bench::table2(Scale::Quick)));
        let t4 = s.spawn(|| format!("{}", ck_bench::table4(Scale::Quick)));
        [
            t1.join().expect("table1 worker"),
            t2.join().expect("table2 worker"),
            t4.join().expect("table4 worker"),
        ]
        .join("\n")
    });
    assert_eq!(serial, parallel);
}
