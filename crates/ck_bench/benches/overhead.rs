//! Kernel messaging overhead on the thread backend (real-time half of
//! Table 6): round-trip cost of kernel messages between two PE threads,
//! and PE-local message self-send throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use chare_kernel::prelude::*;
use ck_apps::baseline::kernel_pingpong;
use multicomputer::{ThreadConfig, Topology};

/// A chare that sends itself `n` messages and exits — measures the
/// kernel's local scheduling path with no network involved.
struct SelfSender {
    remaining: u32,
}

#[derive(Clone, Copy)]
struct SelfSeed {
    n: u32,
}
message!(SelfSeed);

const EP_TICK: EpId = EpId(1);

impl ChareInit for SelfSender {
    type Seed = SelfSeed;
    fn create(seed: SelfSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.send(me, EP_TICK, ());
        SelfSender {
            remaining: seed.n,
        }
    }
}

impl Chare for SelfSender {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, ctx: &mut Ctx) {
        if self.remaining == 0 {
            ctx.exit(());
        } else {
            self.remaining -= 1;
            let me = ctx.self_id();
            ctx.send(me, EP_TICK, ());
        }
    }
}

fn self_send_program(n: u32) -> Program {
    let mut b = ProgramBuilder::new();
    let kind = b.chare::<SelfSender>();
    b.main(kind, SelfSeed { n });
    b.build()
}

fn overhead_benches(c: &mut Criterion) {
    let cfg = || ThreadConfig::new(2).with_watchdog(Duration::from_secs(30));

    let mut group = c.benchmark_group("overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let rounds = 2_000u32;
    for bytes in [0u32, 1024] {
        let prog = kernel_pingpong(rounds, bytes);
        group.throughput(Throughput::Elements(2 * rounds as u64));
        group.bench_function(format!("pingpong_{bytes}B"), |b| {
            b.iter(|| {
                let mut rep = prog.run_threads_cfg(cfg(), Topology::FullyConnected);
                assert!(!rep.timed_out);
                assert_eq!(rep.take_result::<u32>(), Some(rounds));
            });
        });
    }

    let n = 20_000u32;
    let prog = self_send_program(n);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("local_self_send", |b| {
        b.iter(|| {
            let rep = prog.run_threads_cfg(
                ThreadConfig::new(1).with_watchdog(Duration::from_secs(30)),
                Topology::FullyConnected,
            );
            assert!(!rep.timed_out);
        });
    });
    group.finish();
}

criterion_group!(benches, overhead_benches);
criterion_main!(benches);
