//! Harness performance: how fast the discrete-event simulator itself
//! executes kernel programs (events per second of host time). Keeps the
//! experiment turnaround honest as the machine model grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use chare_kernel::prelude::*;
use ck_apps::{fib, nqueens};

fn simulator_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Message-heavy adaptive tree: measures dispatch + routing overhead.
    let params = nqueens::QueensParams { n: 9, grain: 5 };
    let prog = nqueens::build_default(params);
    let events = {
        let rep = prog.run_sim_preset(16, MachinePreset::NcubeLike);
        rep.sim.as_ref().unwrap().events
    };
    group.throughput(Throughput::Elements(events));
    group.bench_function("nqueens9_16pe", |b| {
        b.iter(|| {
            let mut rep = prog.run_sim_preset(16, MachinePreset::NcubeLike);
            assert_eq!(rep.take_result::<u64>(), Some(352));
        });
    });

    // PE-count scaling of the event loop at fixed total work.
    let prog = fib::build_default(fib::FibParams { n: 20, grain: 12 });
    let want = fib::fib_seq(20);
    for npes in [4usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("fib20_scaling", npes),
            &npes,
            |b, &npes| {
                b.iter(|| {
                    let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
                    assert_eq!(rep.take_result::<u64>(), Some(want));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
