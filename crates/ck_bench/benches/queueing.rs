//! Microbenchmarks of the scheduler queue implementations (the constant
//! factors behind the Table 5 strategies), plus bitvector-priority
//! operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

use chare_kernel::priority::{BitPrio, Priority};
use chare_kernel::queueing::QueueingStrategy;

fn queue_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    const N: u64 = 10_000;
    group.throughput(Throughput::Elements(N));
    for strat in QueueingStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("push_pop", strat.name()),
            &strat,
            |b, &strat| {
                b.iter(|| {
                    let mut q = strat.make::<u64>();
                    for i in 0..N {
                        q.push(Priority::Int((i % 64) as i64), i);
                    }
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum = sum.wrapping_add(v);
                    }
                    sum
                });
            },
        );
    }

    // Bitvector priorities of realistic search depth.
    for strat in [QueueingStrategy::Fifo, QueueingStrategy::BitvecPriority] {
        group.bench_with_input(
            BenchmarkId::new("push_pop_bitprio", strat.name()),
            &strat,
            |b, &strat| {
                let prios: Vec<Priority> = (0..N)
                    .map(|i| {
                        let mut p = BitPrio::root();
                        for d in 0..12 {
                            p = p.child(((i >> d) & 0xF) as u32, 4);
                        }
                        Priority::Bits(p)
                    })
                    .collect();
                b.iter(|| {
                    let mut q = strat.make::<u64>();
                    for (i, p) in prios.iter().enumerate() {
                        q.push(p.clone(), i as u64);
                    }
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum = sum.wrapping_add(v);
                    }
                    sum
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("bitprio");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("child_depth24", |b| {
        b.iter(|| {
            let mut p = BitPrio::root();
            for d in 0..24u32 {
                p = p.child(d % 8, 3);
            }
            p
        });
    });
    group.bench_function("cmp_depth24", |b| {
        let mut x = BitPrio::root();
        let mut y = BitPrio::root();
        for d in 0..24u32 {
            x = x.child(d % 8, 3);
            y = y.child((d + 1) % 8, 3);
        }
        b.iter(|| x.cmp(&y));
    });
    group.finish();
}

criterion_group!(benches, queue_benches);
criterion_main!(benches);
