//! Load balancing strategies on the real-parallel thread backend (the
//! shared-memory half of Table 4): the same adaptive tree workload under
//! each placement policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chare_kernel::prelude::*;
use ck_apps::nqueens;
use multicomputer::{ThreadConfig, Topology};

fn balance_benches(c: &mut Criterion) {
    let params = nqueens::QueensParams { n: 11, grain: 6 };
    let strategies = [
        BalanceStrategy::Local,
        BalanceStrategy::Random,
        BalanceStrategy::CentralManager,
        BalanceStrategy::TokenIdle,
        BalanceStrategy::acwn(),
    ];
    let mut group = c.benchmark_group("balance/nqueens11_4pe");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for strat in &strategies {
        let prog = nqueens::build(params, QueueingStrategy::Fifo, strat.clone());
        group.bench_with_input(
            BenchmarkId::from_parameter(strat.name()),
            strat,
            |b, _strat| {
                b.iter(|| {
                    let mut rep = prog.run_threads_cfg(
                        ThreadConfig::new(4).with_watchdog(Duration::from_secs(30)),
                        Topology::Hypercube,
                    );
                    assert!(!rep.timed_out);
                    assert_eq!(rep.take_result::<u64>(), Some(2680));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, balance_benches);
criterion_main!(benches);
