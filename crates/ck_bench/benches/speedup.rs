//! Wall-clock behavior on the real-parallel thread backend (the
//! shared-memory-machine side of Tables 2/3): each benchmark at 1, 2 and
//! 4 PE threads. On a multi-core host these curves show real speedup;
//! on a single-core host (like the CI machine the committed numbers come
//! from) they measure oversubscription overhead instead, and the
//! simulator carries the scaling story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use chare_kernel::prelude::*;
use ck_apps::{fib, jacobi, nqueens, primes};
use multicomputer::{ThreadConfig, Topology};

fn thread_cfg(npes: usize) -> ThreadConfig {
    ThreadConfig::new(npes).with_watchdog(Duration::from_secs(30))
}

fn bench_app(c: &mut Criterion, name: &str, prog: &Program, check: impl Fn(&mut CkReport)) {
    let mut group = c.benchmark_group(format!("threads/{name}"));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for npes in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(npes), &npes, |b, &npes| {
            b.iter(|| {
                let mut rep = prog.run_threads_cfg(thread_cfg(npes), Topology::Hypercube);
                assert!(!rep.timed_out);
                check(&mut rep);
            });
        });
    }
    group.finish();
}

fn speedup_benches(c: &mut Criterion) {
    let fib_prog = fib::build_default(fib::FibParams { n: 25, grain: 17 });
    let fib_want = fib::fib_seq(25);
    bench_app(c, "fib25", &fib_prog, move |rep| {
        assert_eq!(rep.take_result::<u64>(), Some(fib_want));
    });

    let q_prog = nqueens::build_default(nqueens::QueensParams { n: 10, grain: 6 });
    bench_app(c, "nqueens10", &q_prog, move |rep| {
        assert_eq!(rep.take_result::<u64>(), Some(724));
    });

    let p_prog = primes::build_default(primes::PrimesParams {
        limit: 60_000,
        chunks: 128,
    });
    let p_want = primes::primes_seq(60_000);
    bench_app(c, "primes60k", &p_prog, move |rep| {
        assert_eq!(rep.take_result::<u64>(), Some(p_want));
    });

    let j_params = jacobi::JacobiParams { n: 64, iters: 20 };
    let j_prog = jacobi::build_default(j_params);
    let j_want = jacobi::jacobi_seq(j_params);
    bench_app(c, "jacobi64", &j_prog, move |rep| {
        let got = rep.take_result::<f64>().expect("checksum");
        assert!((got - j_want).abs() <= 1e-9 * j_want.abs().max(1.0));
    });
}

criterion_group!(benches, speedup_benches);
criterion_main!(benches);
