//! Table driver: the ordered job list behind `tables --all`, an
//! optional thread-parallel runner, and the `--host-perf` harness that
//! records host-side cost (wall-clock, simulator events/sec, peak RSS)
//! into a `BENCH_*.json` baseline.
//!
//! Each job regenerates one table/figure and is independent of every
//! other: tables share no mutable state (the run memo in
//! [`crate::runner`] is thread-local) and each is deterministic in
//! isolation, so running them on a thread pool produces byte-identical
//! output to the serial order — only the wall-clock changes. Results
//! are collected into order-indexed slots, never in completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::experiments::{self, Scale};
use crate::table::Table;

/// One named table-regeneration job.
pub type TableJob = (&'static str, fn(Scale) -> Table);

/// Every table/figure of the evaluation, in output order.
pub fn table_jobs() -> Vec<TableJob> {
    vec![
        ("table1", experiments::table1 as fn(Scale) -> Table),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
        ("table4", experiments::table4),
        ("table5", experiments::table5),
        ("table6", experiments::table6),
        ("table7", experiments::table7),
        ("table8", experiments::table8),
        ("fig1", experiments::fig1),
        ("fig2", experiments::fig2),
        ("fig3", experiments::fig3),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("table_r", experiments::table_r),
        ("table_p", crate::trace_view::table_p),
        ("table_m", crate::metrics_view::table_m),
        ("table_b", experiments::table_b),
        ("table_h", experiments::table_h),
    ]
}

/// Host-side cost of regenerating one table.
#[derive(Clone, Copy, Debug)]
pub struct BenchRecord {
    /// Job name (`table1` … `table_m`).
    pub name: &'static str,
    /// Wall-clock nanoseconds spent in the job.
    pub wall_ns: u64,
    /// Simulator events processed by the job's fresh runs (memoized
    /// runs contribute zero — they cost no host time).
    pub events: u64,
}

/// Run every job and return the tables in output order. `jobs <= 1`
/// runs serially on the calling thread; larger values use a thread
/// pool. Table bytes are identical either way.
pub fn run_all(scale: Scale, jobs: usize) -> Vec<Table> {
    run_all_recording(scale, jobs, true).0
}

/// [`run_all`], also recording per-job host cost and the total count
/// of simulated vs memoized runs across all workers. `cache` toggles
/// the deterministic run memo on every worker thread.
pub fn run_all_recording(
    scale: Scale,
    jobs: usize,
    cache: bool,
) -> (Vec<Table>, Vec<BenchRecord>, crate::runner::CacheStats) {
    let list = table_jobs();
    let n = list.len();
    let workers = jobs.clamp(1, n);

    let run_one = |name: &'static str, f: fn(Scale) -> Table| {
        multicomputer::take_events_tally();
        let start = Instant::now();
        let table = f(scale);
        let wall_ns = start.elapsed().as_nanos() as u64;
        let events = multicomputer::take_events_tally();
        (
            table,
            BenchRecord {
                name,
                wall_ns,
                events,
            },
        )
    };

    if workers <= 1 {
        crate::runner::set_caching(cache);
        let before = crate::runner::cache_stats();
        let (tables, records) = list.into_iter().map(|(name, f)| run_one(name, f)).unzip();
        let after = crate::runner::cache_stats();
        let stats = crate::runner::CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            entries: after.entries,
        };
        return (tables, records, stats);
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<(Table, BenchRecord)>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let totals = Mutex::new(crate::runner::CacheStats::default());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                crate::runner::set_caching(cache);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (name, f) = list[i];
                    let done = run_one(name, f);
                    slots.lock().unwrap()[i] = Some(done);
                }
                let mine = crate::runner::cache_stats();
                let mut t = totals.lock().unwrap();
                t.hits += mine.hits;
                t.misses += mine.misses;
                t.entries += mine.entries;
            });
        }
    });
    let (tables, records) = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every job slot filled"))
        .unzip();
    (tables, records, totals.into_inner().unwrap())
}

/// Peak resident set size of this process in kilobytes, from
/// `/proc/self/status` (`VmHWM`). Zero where unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Render the `BENCH_*.json` document: per-table wall-clock and
/// events/sec plus whole-process totals. Hand-built JSON (the repo
/// vendors no serializer); `ck_trace::json_lint` checks it before it
/// is written.
pub fn bench_json(
    scale: Scale,
    jobs: usize,
    cache_on: bool,
    total_wall_ns: u64,
    records: &[BenchRecord],
    stats: crate::runner::CacheStats,
) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"tables\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"run_memo\": {cache_on},\n"));
    out.push_str(&format!(
        "  \"runs_simulated\": {},\n  \"runs_memoized\": {},\n",
        stats.misses, stats.hits
    ));
    let total_events: u64 = records.iter().map(|r| r.events).sum();
    out.push_str(&format!(
        "  \"total_wall_ms\": {:.1},\n",
        total_wall_ns as f64 / 1e6
    ));
    out.push_str(&format!("  \"total_events\": {total_events},\n"));
    out.push_str(&format!(
        "  \"events_per_sec\": {:.0},\n",
        total_events as f64 / (total_wall_ns.max(1) as f64 / 1e9)
    ));
    out.push_str(&format!("  \"peak_rss_kb\": {},\n", peak_rss_kb()));
    out.push_str("  \"tables\": [\n");
    for (i, r) in records.iter().enumerate() {
        let evps = r.events as f64 / (r.wall_ns.max(1) as f64 / 1e9);
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.1}, \"events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            r.name,
            r.wall_ns as f64 / 1e6,
            r.events,
            evps,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_cover_all_in_order() {
        let names: Vec<&str> = table_jobs().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 21);
        assert_eq!(names[0], "table1");
        assert_eq!(names[8], "fig1");
        assert_eq!(names[16], "table_r");
        assert_eq!(names[17], "table_p");
        assert_eq!(names[18], "table_m");
        assert_eq!(names[19], "table_b");
        assert_eq!(names[20], "table_h");
    }

    #[test]
    fn bench_json_is_valid_and_complete() {
        let records = [
            BenchRecord {
                name: "table1",
                wall_ns: 1_234_567,
                events: 1000,
            },
            BenchRecord {
                name: "table2",
                wall_ns: 7_654_321,
                events: 2000,
            },
        ];
        let json = bench_json(
            Scale::Quick,
            2,
            true,
            10_000_000,
            &records,
            crate::runner::CacheStats {
                hits: 3,
                misses: 5,
                entries: 5,
            },
        );
        ck_trace::json_lint::validate(&json).expect("bench JSON must lint");
        for key in [
            "\"bench\"",
            "\"scale\"",
            "\"jobs\"",
            "\"total_wall_ms\"",
            "\"events_per_sec\"",
            "\"peak_rss_kb\"",
            "\"tables\"",
            "\"runs_memoized\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn peak_rss_reads_something_on_linux() {
        // On Linux this must parse; elsewhere 0 is acceptable.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
