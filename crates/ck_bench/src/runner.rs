//! Memoized scenario runner: deterministic simulator runs, keyed by an
//! explicit configuration label.
//!
//! The evaluation re-runs many *identical* scenarios: every speedup
//! table runs `P=1` twice (the `T(1)` baseline plus the `P=1` column),
//! Figure 1 replays Table 2's entire sweep as CSV series, Tables 1/8
//! and the clean rows of Table R re-run the standard suite at 16 PEs,
//! and the strategy ablations (Tables 4/5, Figures 2/4/7/8) all revisit
//! the suite's default configurations. Because the simulator is fully
//! deterministic — same program, same PE count, same preset ⇒ the same
//! report, bit for bit — those repeats can be served from a cache
//! without changing a single byte of table output.
//!
//! # Soundness
//!
//! Correctness rests on two properties:
//!
//! 1. **Determinism.** `Program::run_sim_preset` is a pure function of
//!    (program configuration, `npes`, preset). This is the repo's core
//!    reproducibility invariant, enforced by the byte-identical
//!    `EXPERIMENTS.md` regeneration check.
//! 2. **Injective labels.** Callers must fold *every* knob that can
//!    change the built program into the label: app name, parameter
//!    struct (via its `Debug` form), queueing strategy, balance
//!    strategy (its `Debug` form includes tuning parameters), and the
//!    combining flag. [`scenario_label`] builds labels in one canonical
//!    format so equal configurations collide (that's the point) and
//!    different ones cannot.
//!
//! Runs with nondeterministic *observability* extras that the tables
//! consume (sampling, tracing, fault injection) go through
//! `Program::run_sim` directly and are never cached here.
//!
//! The cache is thread-local: the parallel table driver gives each
//! worker its own memo, so no locks are taken and results never cross
//! threads. Caching only changes wall-clock time, never table bytes;
//! `tables --no-cache` and the A/B test in `perf_invariants.rs` verify
//! exactly that.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use chare_kernel::prelude::*;

thread_local! {
    static CACHE: RefCell<HashMap<String, Rc<CkReport>>> = RefCell::new(HashMap::new());
    static ENABLED: Cell<bool> = const { Cell::new(true) };
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Enable or disable memoization on this thread. Disabling also drops
/// the existing entries, so a subsequent re-enable starts cold.
pub fn set_caching(on: bool) {
    ENABLED.with(|c| c.set(on));
    if !on {
        CACHE.with(|c| c.borrow_mut().clear());
    }
}

/// Whether memoization is enabled on this thread (default: yes).
pub fn caching() -> bool {
    ENABLED.with(|c| c.get())
}

/// Hit/miss accounting for the current thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Runs served from the memo.
    pub hits: u64,
    /// Runs actually simulated.
    pub misses: u64,
    /// Reports currently retained.
    pub entries: usize,
}

/// This thread's cache statistics.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.with(|c| c.get()),
        misses: MISSES.with(|c| c.get()),
        entries: CACHE.with(|c| c.borrow().len()),
    }
}

/// Canonical scenario label. Every knob that influences the built
/// program must appear: see the module docs for why this is
/// load-bearing. `params_debug` is the `Debug` rendering of the app's
/// parameter struct; `balance` is rendered via `Debug` so strategy
/// tuning parameters (e.g. ACWN's hop budget) distinguish scenarios
/// that share a strategy name.
pub fn scenario_label(
    app: &str,
    params_debug: &str,
    queueing: QueueingStrategy,
    balance: &BalanceStrategy,
    combining: bool,
) -> String {
    format!(
        "{app}:{params_debug}|q={}|b={balance:?}|comb={combining}",
        queueing.name()
    )
}

/// Attach streaming metrics to every memoized run when
/// `CK_TABLES_METRICS=1` is set. Metrics are passive and
/// byte-identical-off, so this cannot change a table byte — which is
/// exactly what CI uses it for: `tables --all` output is diffed with
/// the variable set against a run without it.
fn with_forced_metrics(prog: Program) -> Program {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    let forced = *FORCED.get_or_init(|| {
        std::env::var("CK_TABLES_METRICS").map(|v| v == "1").unwrap_or(false)
    });
    if forced {
        prog.with_metrics(chare_kernel::metrics::MetricsConfig::default())
    } else {
        prog
    }
}

/// Run `build()` on the simulator at `npes` PEs under `preset`, or
/// return the memoized report for the same `(label, npes, preset)`.
/// The program is only built on a miss.
pub fn run_preset(
    label: &str,
    npes: usize,
    preset: MachinePreset,
    build: impl FnOnce() -> Program,
) -> Rc<CkReport> {
    let key = format!("{label}@P{npes}|{preset:?}");
    if caching() {
        if let Some(hit) = CACHE.with(|c| c.borrow().get(&key).cloned()) {
            HITS.with(|c| c.set(c.get() + 1));
            return hit;
        }
    }
    MISSES.with(|c| c.set(c.get() + 1));
    let rep = Rc::new(with_forced_metrics(build()).run_sim_preset(npes, preset));
    if caching() {
        CACHE.with(|c| c.borrow_mut().insert(key, rep.clone()));
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_apps::fib;

    fn tiny() -> Program {
        fib::build_default(fib::FibParams { n: 10, grain: 6 })
    }

    #[test]
    fn hit_returns_the_same_report() {
        set_caching(true);
        let a = run_preset("test:fib-tiny", 2, MachinePreset::NcubeLike, tiny);
        let b = run_preset("test:fib-tiny", 2, MachinePreset::NcubeLike, || {
            panic!("cache hit must not rebuild")
        });
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_npes_and_labels_miss() {
        set_caching(true);
        let a = run_preset("test:fib-k1", 2, MachinePreset::NcubeLike, tiny);
        let b = run_preset("test:fib-k1", 4, MachinePreset::NcubeLike, tiny);
        let c = run_preset("test:fib-k2", 2, MachinePreset::NcubeLike, tiny);
        assert!(!Rc::ptr_eq(&a, &b));
        assert!(!Rc::ptr_eq(&a, &c));
    }

    #[test]
    fn disabled_cache_always_rebuilds() {
        set_caching(false);
        let a = run_preset("test:fib-off", 2, MachinePreset::NcubeLike, tiny);
        let b = run_preset("test:fib-off", 2, MachinePreset::NcubeLike, tiny);
        assert!(!Rc::ptr_eq(&a, &b));
        assert_eq!(a.time_ns, b.time_ns, "determinism regardless of cache");
        set_caching(true);
    }

    #[test]
    fn label_separates_every_knob() {
        let base = scenario_label(
            "fib",
            "FibParams { n: 24, grain: 14 }",
            QueueingStrategy::Fifo,
            &BalanceStrategy::acwn(),
            false,
        );
        let others = [
            scenario_label(
                "fib",
                "FibParams { n: 24, grain: 15 }",
                QueueingStrategy::Fifo,
                &BalanceStrategy::acwn(),
                false,
            ),
            scenario_label(
                "fib",
                "FibParams { n: 24, grain: 14 }",
                QueueingStrategy::Lifo,
                &BalanceStrategy::acwn(),
                false,
            ),
            scenario_label(
                "fib",
                "FibParams { n: 24, grain: 14 }",
                QueueingStrategy::Fifo,
                &BalanceStrategy::Acwn {
                    max_hops: 1,
                    low_mark: 2,
                },
                false,
            ),
            scenario_label(
                "fib",
                "FibParams { n: 24, grain: 14 }",
                QueueingStrategy::Fifo,
                &BalanceStrategy::acwn(),
                true,
            ),
        ];
        for o in &others {
            assert_ne!(&base, o);
        }
    }
}
