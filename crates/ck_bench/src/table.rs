//! Plain-text table formatting for experiment output.

use std::fmt;

/// A formatted experiment result: a title, column headers, and rows of
/// cells. Renders as an aligned text table; `to_csv` gives the same data
/// machine-readably.
pub struct Table {
    /// Experiment id and description (e.g. "Table 2: ...").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// GitHub-flavored markdown rendering (title as heading, headers,
    /// rows; notes as a trailing paragraph).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.headers.len())
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }

    /// CSV rendering (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, " ")?;
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        writeln!(f, " {}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Table X", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let s = format!("{t}");
        assert!(s.contains("Table X"));
        assert!(s.contains("long_header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn markdown_has_title_and_separator() {
        let mut t = Table::new("Table X: demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.starts_with("## Table X: demo"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("*a note*"));
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row(vec!["1".into()]);
    }
}
