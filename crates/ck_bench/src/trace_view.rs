//! Trace-driven experiment views: where the mini-Projections analyzer
//! ([`ck_trace`]) meets the benchmark suite.
//!
//! [`table_p`] is "Table P" of the reconstructed evaluation — the
//! overhead-attribution table the paper's overhead discussion implies
//! but never prints: for each benchmark, the split of total PE-time
//! into useful work, scheduler dispatch, runtime control traffic and
//! idle, plus grain-size and critical-path summaries. [`comm_matrix_table`]
//! prints the PE×PE message matrix for one benchmark, and
//! [`export_trace`] emits a Perfetto-loadable Chrome trace-event JSON
//! timeline.

use chare_kernel::{CkReport, TraceConfig};
use ck_trace::RunTrace;
use multicomputer::{MachinePreset, SimConfig};

use crate::experiments::{standard_suite, AppCase, Scale};
use crate::table::Table;

const NPES: usize = 16;
const PRESET: MachinePreset = MachinePreset::NcubeLike;

/// Run one app with both kernel event tracing and simulator span
/// tracing enabled, and join the two into a [`RunTrace`].
fn traced_run(case: &AppCase) -> (CkReport, RunTrace) {
    let prog = case.build_default().with_tracing(TraceConfig::default());
    let cfg = SimConfig::preset(NPES, PRESET).with_trace();
    let rep = prog.run_sim(cfg);
    let run = RunTrace::from_report(&rep, &PRESET.cost_model())
        .expect("traced simulator run must yield a RunTrace");
    (rep, run)
}

fn case_named(scale: Scale, name: &str) -> AppCase {
    standard_suite(scale)
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = standard_suite(scale).iter().map(|c| c.name).collect();
            panic!("unknown benchmark {name:?}; known: {known:?}")
        })
}

/// Table P: overhead attribution per benchmark — the Projections view
/// of where the PE-seconds went.
pub fn table_p(scale: Scale) -> Table {
    let mut t = Table::new(
        format!(
            "Table P: overhead attribution ({NPES}-PE simulated NCUBE-like hypercube, tracing on)"
        ),
        &[
            "program",
            "work%",
            "dispatch%",
            "control%",
            "idle%",
            "med grain us",
            "cp bound ms",
            "cp eff",
            "events",
        ],
    );
    let mut truncated: Vec<String> = Vec::new();
    for case in standard_suite(scale) {
        let (_, run) = traced_run(&case);
        if let Some(warn) = run.truncation_warning() {
            truncated.push(format!("{}: {warn}", case.name));
        }
        let (work, dispatch, control, idle) = run.attribution().fractions();
        let grain = run.grain_histogram();
        let cp = run.critical_path();
        t.row(vec![
            case.name.into(),
            format!("{:.1}", work * 100.0),
            format!("{:.1}", dispatch * 100.0),
            format!("{:.1}", control * 100.0),
            format!("{:.1}", idle * 100.0),
            format!("{:.1}", grain.median_ns as f64 / 1e3),
            format!("{:.2}", cp.lower_bound_ns as f64 / 1e6),
            format!("{:.2}", cp.efficiency()),
            run.events.len().to_string(),
        ]);
    }
    t.note("work/dispatch/control/idle split the full P x T(P) PE-time; rows sum to 100%");
    t.note("cp bound = max(total work / P, longest entry); cp eff = bound / T(P), 1.00 is optimal");
    t.note("events = kernel trace records captured (sends, recvs, entries, balance decisions)");
    // An overflowed trace ring silently undercounts event-derived
    // columns; say so in the table itself rather than in a log no one
    // reads.
    for warn in truncated {
        t.note(warn);
    }
    t
}

/// PE×PE message-count matrix for one benchmark, as a table.
pub fn comm_matrix_table(scale: Scale, name: &str) -> Table {
    let case = case_named(scale, name);
    let (_, run) = traced_run(&case);
    let m = run.comm_matrix();
    let mut headers: Vec<String> = vec!["src\\dst".into()];
    headers.extend((0..m.npes).map(|d| d.to_string()));
    let mut t = Table {
        title: format!(
            "Communication matrix: {name} on {NPES} PEs (messages sent src -> dst)"
        ),
        headers,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    for (s, row) in m.msgs.iter().enumerate() {
        let mut cells = vec![s.to_string()];
        cells.extend(row.iter().map(|v| v.to_string()));
        t.row(cells);
    }
    t.note(format!(
        "{} messages total, {:.0}% remote",
        m.total_msgs(),
        m.remote_fraction() * 100.0
    ));
    t
}

/// Chrome trace-event JSON for one benchmark (load at ui.perfetto.dev).
/// The export lint rejects a silently-truncated timeline: if the trace
/// ring overflowed, the document must say so.
pub fn export_trace(scale: Scale, name: &str) -> String {
    let case = case_named(scale, name);
    let (_, run) = traced_run(&case);
    let json = run.to_chrome_trace();
    ck_trace::json_lint::validate_export(&json, run.dropped)
        .unwrap_or_else(|e| panic!("trace export for {name} failed lint: {e}"));
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_p_rows_sum_to_100_percent() {
        let t = table_p(Scale::Quick);
        assert_eq!(t.rows.len(), 9);
        for row in &t.rows {
            let sum: f64 = row[1..5].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((sum - 100.0).abs() < 0.5, "{row:?}");
            let eff: f64 = row[7].parse().unwrap();
            assert!(eff > 0.0 && eff <= 1.0, "{row:?}");
            let events: u64 = row[8].parse().unwrap();
            assert!(events > 0, "{row:?}");
        }
    }

    #[test]
    fn comm_matrix_fib_has_remote_traffic() {
        let t = comm_matrix_table(Scale::Quick, "fib");
        assert_eq!(t.rows.len(), NPES);
        assert_eq!(t.headers.len(), NPES + 1);
        let total: u64 = t
            .rows
            .iter()
            .flat_map(|r| r[1..].iter())
            .map(|c| c.parse::<u64>().unwrap())
            .sum();
        assert!(total > 0);
    }

    #[test]
    fn exported_trace_is_valid_json() {
        let json = export_trace(Scale::Quick, "fib");
        ck_trace::json_lint::validate(&json).unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
    }
}
