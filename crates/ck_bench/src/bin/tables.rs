//! Regenerate the evaluation tables and figures.
//!
//! ```text
//! cargo run --release -p ck_bench --bin tables -- --all
//! cargo run --release -p ck_bench --bin tables -- --table 2
//! cargo run --release -p ck_bench --bin tables -- --fig 1 --csv
//! cargo run --release -p ck_bench --bin tables -- --all --quick
//! cargo run --release -p ck_bench --bin tables -- --table p --quick
//! cargo run --release -p ck_bench --bin tables -- --matrix fib --quick
//! cargo run --release -p ck_bench --bin tables -- --export-trace fib --out fib.json
//! ```

use std::io::Write as _;

use ck_bench::{Scale, Table};

/// Internal id for `--table r`.
const TABLE_R: u32 = 100;
/// Internal id for `--table p`.
const TABLE_P: u32 = 101;

fn usage() -> ! {
    eprintln!(
        "usage: tables [--all | --table N | --fig N | --matrix APP | --export-trace APP]\n\
         \x20              [--quick] [--csv | --md] [--out PATH]\n\
         tables: 1..=8, r (resilience), p (overhead attribution)   figures: 1..=8\n\
         --matrix APP        PExPE message matrix for one benchmark (e.g. fib)\n\
         --export-trace APP  Chrome trace-event JSON for one benchmark\n\
         \x20                  (open at https://ui.perfetto.dev); --out writes to a file"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut csv = false;
    let mut md = false;
    let mut which: Vec<(bool, u32)> = Vec::new(); // (is_table, id)
    let mut matrices: Vec<String> = Vec::new();
    let mut exports: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--csv" => csv = true,
            "--md" => md = true,
            "--all" => all = true,
            "--table" | "--fig" => {
                let is_table = args[i] == "--table";
                i += 1;
                let id = match args.get(i).map(String::as_str) {
                    Some("r") | Some("R") if is_table => TABLE_R,
                    Some("p") | Some("P") if is_table => TABLE_P,
                    Some(a) => a.parse().unwrap_or_else(|_| usage()),
                    None => usage(),
                };
                which.push((is_table, id));
            }
            "--matrix" => {
                i += 1;
                matrices.push(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--export-trace" => {
                i += 1;
                exports.push(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if !all && which.is_empty() && matrices.is_empty() && exports.is_empty() {
        all = true;
    }

    let run = |is_table: bool, id: u32| -> Table {
        match (is_table, id) {
            (true, 1) => ck_bench::table1(scale),
            (true, 2) => ck_bench::table2(scale),
            (true, 3) => ck_bench::table3(scale),
            (true, 4) => ck_bench::table4(scale),
            (true, 5) => ck_bench::table5(scale),
            (true, 6) => ck_bench::table6(scale),
            (true, 7) => ck_bench::table7(scale),
            (true, 8) => ck_bench::table8(scale),
            (true, TABLE_R) => ck_bench::table_r(scale),
            (true, TABLE_P) => ck_bench::table_p(scale),
            (false, 1) => ck_bench::fig1(scale),
            (false, 2) => ck_bench::fig2(scale),
            (false, 3) => ck_bench::fig3(scale),
            (false, 4) => ck_bench::fig4(scale),
            (false, 5) => ck_bench::fig5(scale),
            (false, 6) => ck_bench::fig6(scale),
            (false, 7) => ck_bench::fig7(scale),
            (false, 8) => ck_bench::fig8(scale),
            _ => usage(),
        }
    };

    let mut tables: Vec<Table> = if all {
        ck_bench::all(scale)
    } else {
        which.iter().map(|&(t, id)| run(t, id)).collect()
    };
    tables.extend(matrices.iter().map(|m| ck_bench::comm_matrix_table(scale, m)));
    for t in tables {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else if md {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }

    for app in &exports {
        let json = ck_bench::export_trace(scale, app);
        match &out {
            Some(path) => {
                let mut f = std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
                f.write_all(json.as_bytes())
                    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("wrote {} bytes of trace JSON to {path}", json.len());
            }
            None => println!("{json}"),
        }
    }
}
