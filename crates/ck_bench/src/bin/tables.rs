//! Regenerate the evaluation tables and figures.
//!
//! ```text
//! cargo run --release -p ck_bench --bin tables -- --all
//! cargo run --release -p ck_bench --bin tables -- --table 2
//! cargo run --release -p ck_bench --bin tables -- --fig 1 --csv
//! cargo run --release -p ck_bench --bin tables -- --all --quick
//! cargo run --release -p ck_bench --bin tables -- --table p --quick
//! cargo run --release -p ck_bench --bin tables -- --matrix fib --quick
//! cargo run --release -p ck_bench --bin tables -- --export-trace fib --out fib.json
//! cargo run --release -p ck_bench --bin tables -- --all --jobs 4
//! cargo run --release -p ck_bench --bin tables -- --host-perf --bench-out BENCH_5.json
//! cargo run --release -p ck_bench --bin tables -- --table m --quick
//! cargo run --release -p ck_bench --bin tables -- --timeline fib --quick --out fib_tl.json
//! cargo run --release -p ck_bench --bin tables -- --metrics-perf --quick
//! ```

use std::io::Write as _;

use ck_bench::{Scale, Table};

/// Internal id for `--table r`.
const TABLE_R: u32 = 100;
/// Internal id for `--table p`.
const TABLE_P: u32 = 101;
/// Internal id for `--table m`.
const TABLE_M: u32 = 102;
/// Internal id for `--table b`.
const TABLE_B: u32 = 103;
/// Internal id for `--table h`.
const TABLE_H: u32 = 104;

fn usage() -> ! {
    eprintln!(
        "usage: tables [--all | --table N | --fig N | --matrix APP | --export-trace APP]\n\
         \x20              [--timeline APP] [--quick] [--csv | --md] [--out PATH]\n\
         \x20              [--jobs N | --serial] [--no-cache]\n\
         \x20              [--host-perf [--bench-out PATH]] [--metrics-perf]\n\
         tables: 1..=8, r (resilience), p (overhead attribution),\n\
         \x20        m (streaming time profiles), b (cross-backend conformance),\n\
         \x20        h (hash-tree & pipelined table-fill workloads)\n\
         \x20        figures: 1..=8\n\
         --matrix APP        PExPE message matrix for one benchmark (e.g. fib)\n\
         --export-trace APP  Chrome trace-event JSON for one benchmark\n\
         \x20                  (open at https://ui.perfetto.dev); --out writes to a file\n\
         --timeline APP      streaming-metrics utilization timeline for one benchmark;\n\
         \x20                  ASCII to stdout, JSON to --out if given\n\
         --jobs N            regenerate tables on N worker threads (default: host CPUs);\n\
         \x20                  output is byte-identical to --serial\n\
         --no-cache          disable the deterministic run memo (slower, same bytes)\n\
         --host-perf         run --all, report per-table host cost, and write a\n\
         \x20                  BENCH JSON baseline (default BENCH_5.json)\n\
         --metrics-perf      A/B metrics-on vs -off (asserts byte-identical results),\n\
         \x20                  measure overhead and write BENCH_7.json (--bench-out overrides)"
    );
    std::process::exit(2);
}

fn main() {
    // Table B re-invokes this binary as multi-process backend workers;
    // a worker invocation runs its PE loop here and never returns.
    ck_apps::spec::worker_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut csv = false;
    let mut md = false;
    let mut which: Vec<(bool, u32)> = Vec::new(); // (is_table, id)
    let mut matrices: Vec<String> = Vec::new();
    let mut exports: Vec<String> = Vec::new();
    let mut timelines: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut all = false;
    let mut jobs: Option<usize> = None;
    let mut cache = true;
    let mut host_perf = false;
    let mut metrics_perf = false;
    let mut bench_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--csv" => csv = true,
            "--md" => md = true,
            "--all" => all = true,
            "--serial" => jobs = Some(1),
            "--jobs" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| usage());
                jobs = Some(n.max(1));
            }
            "--no-cache" => cache = false,
            "--host-perf" => {
                host_perf = true;
                all = true;
            }
            "--metrics-perf" => metrics_perf = true,
            "--bench-out" => {
                i += 1;
                bench_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--table" | "--fig" => {
                let is_table = args[i] == "--table";
                i += 1;
                let id = match args.get(i).map(String::as_str) {
                    Some("r") | Some("R") if is_table => TABLE_R,
                    Some("p") | Some("P") if is_table => TABLE_P,
                    Some("m") | Some("M") if is_table => TABLE_M,
                    Some("b") | Some("B") if is_table => TABLE_B,
                    Some("h") | Some("H") if is_table => TABLE_H,
                    Some(a) => a.parse().unwrap_or_else(|_| usage()),
                    None => usage(),
                };
                which.push((is_table, id));
            }
            "--matrix" => {
                i += 1;
                matrices.push(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--timeline" => {
                i += 1;
                timelines.push(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--export-trace" => {
                i += 1;
                exports.push(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if !all
        && which.is_empty()
        && matrices.is_empty()
        && exports.is_empty()
        && timelines.is_empty()
        && !metrics_perf
    {
        all = true;
    }

    let run = |is_table: bool, id: u32| -> Table {
        match (is_table, id) {
            (true, 1) => ck_bench::table1(scale),
            (true, 2) => ck_bench::table2(scale),
            (true, 3) => ck_bench::table3(scale),
            (true, 4) => ck_bench::table4(scale),
            (true, 5) => ck_bench::table5(scale),
            (true, 6) => ck_bench::table6(scale),
            (true, 7) => ck_bench::table7(scale),
            (true, 8) => ck_bench::table8(scale),
            (true, TABLE_R) => ck_bench::table_r(scale),
            (true, TABLE_P) => ck_bench::table_p(scale),
            (true, TABLE_M) => ck_bench::table_m(scale),
            (true, TABLE_B) => ck_bench::table_b(scale),
            (true, TABLE_H) => ck_bench::table_h(scale),
            (false, 1) => ck_bench::fig1(scale),
            (false, 2) => ck_bench::fig2(scale),
            (false, 3) => ck_bench::fig3(scale),
            (false, 4) => ck_bench::fig4(scale),
            (false, 5) => ck_bench::fig5(scale),
            (false, 6) => ck_bench::fig6(scale),
            (false, 7) => ck_bench::fig7(scale),
            (false, 8) => ck_bench::fig8(scale),
            _ => usage(),
        }
    };

    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    ck_bench::runner::set_caching(cache);
    let start = std::time::Instant::now();
    let mut bench: Option<(Vec<ck_bench::BenchRecord>, ck_bench::runner::CacheStats)> = None;
    let mut tables: Vec<Table> = if all {
        let (tables, records, stats) = ck_bench::driver::run_all_recording(scale, jobs, cache);
        bench = Some((records, stats));
        tables
    } else {
        which.iter().map(|&(t, id)| run(t, id)).collect()
    };
    let total_wall_ns = start.elapsed().as_nanos() as u64;
    tables.extend(matrices.iter().map(|m| ck_bench::comm_matrix_table(scale, m)));
    for t in tables {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else if md {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }

    if host_perf {
        let (records, stats) = bench.expect("--host-perf implies --all");
        let json =
            ck_bench::driver::bench_json(scale, jobs, cache, total_wall_ns, &records, stats);
        ck_trace::json_lint::validate(&json)
            .unwrap_or_else(|e| panic!("generated bench JSON failed lint: {e}"));
        let path = bench_out.clone().unwrap_or_else(|| "BENCH_5.json".into());
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!(
            "host-perf: {:.1} ms wall on {jobs} job thread(s); {} runs simulated, {} memoized; wrote {path}",
            total_wall_ns as f64 / 1e6,
            stats.misses,
            stats.hits,
        );
    }

    if metrics_perf {
        let reps = match scale {
            Scale::Quick => 3,
            Scale::Full => 5,
        };
        let rows = ck_bench::metrics_ab(scale, reps);
        let json = ck_bench::metrics_bench_json(scale, reps, &rows);
        ck_trace::json_lint::validate(&json)
            .unwrap_or_else(|e| panic!("generated metrics bench JSON failed lint: {e}"));
        let path = bench_out.clone().unwrap_or_else(|| "BENCH_7.json".into());
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        for r in &rows {
            eprintln!(
                "metrics-perf: {} threads {:.2} -> {:.2} ms ({:+.1}%), \
                 sim {:.2} -> {:.2} ms ({:+.1}%); results byte-identical",
                r.name,
                r.thr_off_ns as f64 / 1e6,
                r.thr_on_ns as f64 / 1e6,
                r.overhead() * 100.0,
                r.off_ns as f64 / 1e6,
                r.on_ns as f64 / 1e6,
                r.sim_overhead() * 100.0,
            );
        }
        eprintln!("metrics-perf: wrote {path}");
    }

    for app in &timelines {
        let (text, json) = ck_bench::timeline_view(scale, app);
        print!("{text}");
        if let Some(path) = &out {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {} bytes of timeline JSON to {path}", json.len());
        }
    }

    for app in &exports {
        let json = ck_bench::export_trace(scale, app);
        match &out {
            Some(path) => {
                let mut f = std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
                f.write_all(json.as_bytes())
                    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("wrote {} bytes of trace JSON to {path}", json.len());
            }
            None => println!("{json}"),
        }
    }
}
