//! # ck_bench — the experiment harness
//!
//! Regenerates every table and figure of the SC '91 evaluation (as
//! reconstructed in `DESIGN.md` §4). The [`experiments`] module holds
//! one function per table/figure, each returning a formatted [`Table`];
//! the `tables` binary prints them, and the Criterion benches measure
//! the real-parallel (thread backend) counterparts.
//!
//! All simulator experiments are deterministic: the same binary produces
//! the same numbers on every run.

pub mod driver;
pub mod experiments;
pub mod metrics_view;
pub mod runner;
pub mod table;
pub mod trace_view;

pub use driver::{run_all, table_jobs, BenchRecord};
pub use experiments::*;
pub use metrics_view::{metrics_ab, metrics_bench_json, table_m, timeline_view, GrainClass, MetricsAb};
pub use table::Table;
pub use trace_view::{comm_matrix_table, export_trace, table_p};
