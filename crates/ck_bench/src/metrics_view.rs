//! Metrics-driven experiment views: Table M (streaming time profiles),
//! the `--timeline` chart, and the metrics-overhead A/B harness behind
//! `--metrics-perf` / `BENCH_7.json`.
//!
//! Everything here runs on the *streaming* telemetry of
//! [`chare_kernel::metrics`] — bounded-memory interval slices and
//! histograms — not the full event log the trace views need. Metered
//! runs are never memoized: the run memo stores only results, and these
//! views exist to look at the telemetry, so they call
//! [`Program::run_sim`] directly.

use chare_kernel::metrics::MetricsConfig;
use chare_kernel::{CkReport, MetricsLog, Program};
use ck_trace::TimeProfile;
use multicomputer::{MachinePreset, SimConfig};

use crate::experiments::{standard_suite, AppCase, Scale};
use crate::table::Table;

const NPES: usize = 16;
const PRESET: MachinePreset = MachinePreset::NcubeLike;

/// Apps shown in Table M — recursive tree (fib), speculative search
/// (nqueens) and iterative grid (jacobi): three load-balance shapes.
const TABLE_M_APPS: [&str; 3] = ["fib", "nqueens", "jacobi"];

/// Intervals each app's profile is coarsened to for the table.
const TABLE_M_ROWS: usize = 4;

fn case_named(scale: Scale, name: &str) -> AppCase {
    standard_suite(scale)
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| {
            let known: Vec<&str> = standard_suite(scale).iter().map(|c| c.name).collect();
            panic!("unknown benchmark {name:?}; known: {known:?}")
        })
}

/// Run one app with streaming metrics on and return the report (always
/// a fresh simulation — metered runs bypass the run memo).
fn metered_run(prog: Program) -> CkReport {
    let prog = prog.with_metrics(MetricsConfig::default());
    prog.run_sim(SimConfig::preset(NPES, PRESET))
}

fn metered_log(case: &AppCase) -> (CkReport, MetricsLog) {
    let rep = metered_run(case.build_default());
    let log = rep
        .metrics
        .clone()
        .expect("metered simulator run must yield a MetricsLog");
    (rep, log)
}

/// Table M: streaming time profiles — per-interval utilization,
/// imbalance and traffic for three differently-shaped benchmarks, from
/// O(PEs × buckets) online telemetry rather than an event log.
pub fn table_m(scale: Scale) -> Table {
    let mut t = Table::new(
        format!(
            "Table M: streaming time profiles ({NPES}-PE simulated NCUBE-like hypercube, metrics on)"
        ),
        &[
            "program",
            "t(ms)",
            "util%",
            "max%",
            "imb%",
            "msgs",
            "lat p50 us",
            "grain p50 us",
            "hwm",
        ],
    );
    for name in TABLE_M_APPS {
        let case = case_named(scale, name);
        let (_, log) = metered_log(&case);
        let profile = TimeProfile::from_metrics(&log).coarsen_to(TABLE_M_ROWS);
        let lat_p50 = log.latency_all().quantile_bound(0.5);
        let grain_p50 = log.grain_all().quantile_bound(0.5);
        let hwm = log.queue_hwm_max();
        for r in &profile.rows {
            t.row(vec![
                name.into(),
                format!(
                    "{:.2}",
                    (r.start_ns as f64 + r.width_ns as f64 / 2.0) / 1e6
                ),
                format!("{:.0}", r.mean_util() * 100.0),
                format!("{:.0}", r.max_util() * 100.0),
                format!("{:.0}", r.imbalance_pct()),
                r.msgs_sent.to_string(),
                format!("{:.1}", lat_p50 as f64 / 1e3),
                format!("{:.1}", grain_p50 as f64 / 1e3),
                hwm.to_string(),
            ]);
        }
    }
    t.note(format!(
        "each program's run is folded to {TABLE_M_ROWS} intervals; imb% = how far the busiest \
         PE exceeds the mean"
    ));
    t.note("lat/grain p50 = streaming log2-histogram upper bound; hwm = deepest runnable backlog");
    t.note("telemetry is O(PEs x buckets) regardless of run length -- no event log required");
    t
}

/// The `--timeline APP` view: the full-resolution utilization chart and
/// its JSON export for one benchmark.
pub fn timeline_view(scale: Scale, name: &str) -> (String, String) {
    let case = case_named(scale, name);
    let (rep, log) = metered_log(&case);
    let profile = TimeProfile::from_metrics(&log);
    let chart = profile.coarsen_to(24);
    let mut text = String::new();
    text.push_str(&format!(
        "time profile: {name} on {NPES} PEs ({}), {:.2} ms\n",
        "ncube-like hypercube",
        rep.time_ns as f64 / 1e6
    ));
    text.push_str(&chart.render());
    let json = profile.to_json();
    ck_trace::json_lint::validate(&json)
        .unwrap_or_else(|e| panic!("timeline JSON failed lint: {e}"));
    (text, json)
}

/// Apps measured by the overhead A/B, tagged by grain class: the two
/// zero-grain tree searches stress the hooks at the highest event rates
/// the machines can generate (tens of millions of hook firings per
/// second of host time), while jacobi and matmul have realistic
/// (µs-scale) entry grains like the paper's production workloads.
/// Overhead is only meaningful relative to task grain — the Task-Bench
/// methodology the metrics design follows (see docs/METRICS.md) — so
/// `BENCH_7.json` reports both classes separately.
const AB_APPS: [(&str, GrainClass); 4] = [
    ("fib", GrainClass::Stress),
    ("nqueens", GrainClass::Stress),
    ("jacobi", GrainClass::Production),
    ("matmul", GrainClass::Production),
];

/// Whether an A/B app's entry grains are realistic or deliberately zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrainClass {
    /// Near-zero entry grain: a pure hook-rate stress test.
    Stress,
    /// Realistic µs-scale entry grain, like the paper's workloads.
    Production,
}

/// PEs used for the threads-machine leg of the A/B experiment (matches
/// the app crates' own thread tests; the machine multiplexes fine on
/// small hosts).
const THREAD_NPES: usize = 4;

/// Result of the metrics-overhead A/B experiment.
#[derive(Clone, Debug)]
pub struct MetricsAb {
    /// App measured.
    pub name: &'static str,
    /// Stress (zero-grain) or production (realistic-grain) workload.
    pub grain: GrainClass,
    /// Best-of-k simulator wall-clock with metrics off, ns.
    pub off_ns: u64,
    /// Best-of-k simulator wall-clock with metrics on, ns.
    pub on_ns: u64,
    /// Best-of-k threads-machine wall-clock with metrics off, ns.
    pub thr_off_ns: u64,
    /// Best-of-k threads-machine wall-clock with metrics on, ns.
    pub thr_on_ns: u64,
    /// Simulated completion time (identical on both sides — asserted).
    pub time_ns: u64,
    /// Simulator events (identical on both sides — asserted).
    pub events: u64,
}

fn ratio(on: u64, off: u64) -> f64 {
    if off == 0 {
        return 0.0;
    }
    on as f64 / off as f64 - 1.0
}

impl MetricsAb {
    /// Metering overhead on the *threads machine* — the real runtime,
    /// where per-event cost includes queues, channels and scheduling.
    /// This is the headline figure: it answers "what does leaving
    /// telemetry on cost a production run".
    pub fn overhead(&self) -> f64 {
        ratio(self.thr_on_ns, self.thr_off_ns)
    }

    /// Metering overhead against the *discrete-event simulator's* bare
    /// event loop (~150 ns/event of host work, zero-cost entry
    /// bodies). A synthetic upper bound: every hook is measured against
    /// a machine that does almost nothing else.
    pub fn sim_overhead(&self) -> f64 {
        ratio(self.on_ns, self.off_ns)
    }
}

/// Assert that a metered run is byte-identical to an unmetered one and
/// measure the host-side cost of metering: best-of-`reps` wall-clock
/// for each side. Panics if metrics perturb anything observable — this
/// is the same guarantee `ck_apps/tests/metrics_invariants.rs` pins,
/// re-checked on every `--metrics-perf` invocation.
pub fn metrics_ab(scale: Scale, reps: usize) -> Vec<MetricsAb> {
    let reps = reps.max(1);
    let mut out = Vec::new();
    for (name, grain) in AB_APPS {
        let case = case_named(scale, name);
        let run_off = || case.build_default().run_sim(SimConfig::preset(NPES, PRESET));
        let run_on = || metered_run(case.build_default());

        let a = run_off();
        let b = run_on();
        assert_eq!(a.time_ns, b.time_ns, "{name}: metrics changed completion time");
        let (sa, sb) = (a.sim.as_ref().unwrap(), b.sim.as_ref().unwrap());
        assert_eq!(sa.events, sb.events, "{name}: metrics changed event count");
        assert_eq!(sa.packets, sb.packets, "{name}: metrics changed packet count");
        assert_eq!(sa.bytes, sb.bytes, "{name}: metrics changed byte count");
        for c in ["user_sent", "user_recv", "entries_executed", "seeds_forwarded"] {
            assert_eq!(
                a.counter_total(c),
                b.counter_total(c),
                "{name}: metrics changed counter {c}"
            );
        }
        assert!(a.metrics.is_none());
        assert!(b.metrics.is_some());

        let thr_cfg = || multicomputer::ThreadConfig::new(THREAD_NPES);
        let thr_off = || {
            case.build_default()
                .run_threads_cfg(thr_cfg(), multicomputer::Topology::Hypercube)
        };
        let thr_on = || {
            case.build_default()
                .with_metrics(MetricsConfig::default())
                .run_threads_cfg(thr_cfg(), multicomputer::Topology::Hypercube)
        };

        let time_one = |f: &dyn Fn() -> CkReport| {
            let t = std::time::Instant::now();
            let _ = f();
            t.elapsed().as_nanos() as u64
        };
        // Interleave off/on repetitions so slow drift on the host (cache
        // state, other processes) biases both sides equally; keep the
        // minimum per side — noise only ever inflates a measurement.
        let best_pair = |off: &dyn Fn() -> CkReport, on: &dyn Fn() -> CkReport| {
            let (mut bo, mut bn) = (u64::MAX, u64::MAX);
            for _ in 0..reps {
                bo = bo.min(time_one(off));
                bn = bn.min(time_one(on));
            }
            (bo, bn)
        };
        let (off_ns, on_ns) = best_pair(&run_off, &run_on);
        let (thr_off_ns, thr_on_ns) = best_pair(&thr_off, &thr_on);
        out.push(MetricsAb {
            name,
            grain,
            off_ns,
            on_ns,
            thr_off_ns,
            thr_on_ns,
            time_ns: a.time_ns,
            events: sa.events,
        });
    }
    out
}

/// Render the `BENCH_7.json` document: the measured cost of leaving
/// streaming metrics on, per app, plus the A/B identity verdict.
pub fn metrics_bench_json(scale: Scale, reps: usize, rows: &[MetricsAb]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str("  \"bench\": \"metrics_overhead\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    out.push_str(&format!("  \"npes\": {NPES},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str("  \"byte_identical\": true,\n");
    let worst_of = |class: GrainClass| {
        rows.iter()
            .filter(|r| r.grain == class)
            .map(MetricsAb::overhead)
            .fold(0.0f64, f64::max)
    };
    out.push_str(&format!(
        "  \"worst_overhead_pct\": {:.2},\n",
        worst_of(GrainClass::Production) * 100.0
    ));
    out.push_str(&format!(
        "  \"stress_worst_overhead_pct\": {:.2},\n",
        worst_of(GrainClass::Stress) * 100.0
    ));
    out.push_str(
        "  \"note\": \"overhead_pct = threads machine (real runtime); headline \
         worst_overhead_pct covers production-grain apps, stress_* the zero-grain \
         hook-rate stress tests; sim_* = vs the bare simulator event loop, a \
         synthetic upper bound. Overhead is grain-relative (Task Bench); \
         methodology in docs/METRICS.md\",\n",
    );
    out.push_str("  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"grain\": \"{}\", \
             \"threads_off_ms\": {:.3}, \"threads_on_ms\": {:.3}, \
             \"overhead_pct\": {:.2}, \"sim_off_ms\": {:.3}, \"sim_on_ms\": {:.3}, \
             \"sim_overhead_pct\": {:.2}, \"sim_events\": {}}}{}\n",
            r.name,
            match r.grain {
                GrainClass::Stress => "stress",
                GrainClass::Production => "production",
            },
            r.thr_off_ns as f64 / 1e6,
            r.thr_on_ns as f64 / 1e6,
            r.overhead() * 100.0,
            r.off_ns as f64 / 1e6,
            r.on_ns as f64 / 1e6,
            r.sim_overhead() * 100.0,
            r.events,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_m_covers_three_apps_with_sane_percentages() {
        let t = table_m(Scale::Quick);
        assert_eq!(t.rows.len(), TABLE_M_APPS.len() * TABLE_M_ROWS);
        for row in &t.rows {
            let util: f64 = row[2].parse().unwrap();
            let maxu: f64 = row[3].parse().unwrap();
            assert!((0.0..=100.0).contains(&util), "{row:?}");
            assert!(maxu >= util, "{row:?}");
            let imb: f64 = row[4].parse().unwrap();
            assert!(imb >= 0.0, "{row:?}");
        }
        // Each app must show real work somewhere.
        for name in TABLE_M_APPS {
            let busy = t
                .rows
                .iter()
                .filter(|r| r[0] == name)
                .any(|r| r[2].parse::<f64>().unwrap() > 0.0);
            assert!(busy, "{name} shows no utilization at all");
        }
    }

    #[test]
    fn timeline_view_renders_chart_and_valid_json() {
        let (text, json) = timeline_view(Scale::Quick, "fib");
        assert!(text.contains("time profile: fib"));
        assert!(text.contains("overall utilization"));
        ck_trace::json_lint::validate(&json).unwrap();
        assert!(json.contains("\"imbalance_pct\""));
    }

    #[test]
    fn metrics_ab_is_identical_and_json_lints() {
        let rows = metrics_ab(Scale::Quick, 1);
        assert_eq!(rows.len(), AB_APPS.len());
        let json = metrics_bench_json(Scale::Quick, 1, &rows);
        ck_trace::json_lint::validate(&json).unwrap();
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.contains("\"worst_overhead_pct\""));
    }
}
