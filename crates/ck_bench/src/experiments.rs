//! One function per table/figure of the reconstructed evaluation.
//!
//! Each function runs the relevant programs on the deterministic
//! simulator and returns a [`Table`]. Two scales are provided:
//! [`Scale::Quick`] keeps every experiment under a few seconds (used by
//! the test suite and `--quick`), [`Scale::Full`] is the paper-scale
//! configuration the committed `EXPERIMENTS.md` numbers come from.

use chare_kernel::prelude::*;
use ck_apps::baseline::{kernel_pingpong, raw_jacobi, raw_pingpong};
use ck_apps::{fib, jacobi, matmul, mmr, nqueens, primes, puzzle, quad, sortbench, tablefill, tsp};
use multicomputer::{Cost, MachinePreset, SimConfig, SimTime};

use crate::table::Table;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small instances, PE counts up to 32 — seconds, for tests.
    Quick,
    /// Paper-scale instances, PE counts up to 256.
    Full,
}

impl Scale {
    fn pes(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[1, 2, 4, 8, 16, 32],
            Scale::Full => &[1, 2, 4, 8, 16, 32, 64, 128, 256],
        }
    }
}

/// One benchmark in the standard suite: how to build it under arbitrary
/// strategies, plus its table defaults.
pub struct AppCase {
    /// Stable name used in tables.
    pub name: &'static str,
    /// `Debug` rendering of the parameter struct the builder closes
    /// over — the memoized runner folds it into scenario labels.
    pub params: String,
    /// Build with explicit strategies.
    pub build: Box<dyn Fn(QueueingStrategy, BalanceStrategy) -> Program>,
    /// Queueing strategy the speedup tables use.
    pub queueing: QueueingStrategy,
    /// Balance strategy the speedup tables use.
    pub balance: BalanceStrategy,
}

impl AppCase {
    /// Build with the table-default strategies.
    pub fn build_default(&self) -> Program {
        (self.build)(self.queueing, self.balance.clone())
    }

    /// Scenario label for the table-default strategies.
    pub fn label(&self) -> String {
        self.label_with(self.queueing, &self.balance, false)
    }

    /// Scenario label for explicit strategies / combining flag.
    pub fn label_with(
        &self,
        queueing: QueueingStrategy,
        balance: &BalanceStrategy,
        combining: bool,
    ) -> String {
        crate::runner::scenario_label(self.name, &self.params, queueing, balance, combining)
    }
}

/// The six benchmarks at the given scale.
pub fn standard_suite(scale: Scale) -> Vec<AppCase> {
    let quick = scale == Scale::Quick;
    let fib_params = if quick {
        fib::FibParams { n: 24, grain: 14 }
    } else {
        fib::FibParams { n: 30, grain: 16 }
    };
    let queens_params = if quick {
        nqueens::QueensParams { n: 10, grain: 6 }
    } else {
        nqueens::QueensParams { n: 12, grain: 7 }
    };
    let tsp_params = if quick {
        tsp::TspParams {
            n: 11,
            seed: 7,
            seq_tail: 6,
        }
    } else {
        tsp::TspParams {
            n: 13,
            seed: 7,
            seq_tail: 7,
        }
    };
    let puzzle_params = if quick {
        puzzle::PuzzleParams {
            scramble: 52,
            seed: 5,
            split_depth: 7,
        }
    } else {
        puzzle::PuzzleParams {
            scramble: 52,
            seed: 5,
            split_depth: 9,
        }
    };
    let jacobi_params = if quick {
        jacobi::JacobiParams { n: 128, iters: 10 }
    } else {
        jacobi::JacobiParams { n: 256, iters: 25 }
    };
    let matmul_params = if quick {
        matmul::MatmulParams { n: 96 }
    } else {
        matmul::MatmulParams { n: 192 }
    };
    let quad_params = if quick {
        quad::QuadParams {
            a: 0.0,
            b: 10.0,
            tol: 1e-8,
            grain: 0.1,
        }
    } else {
        quad::QuadParams {
            a: 0.0,
            b: 10.0,
            tol: 1e-11,
            grain: 0.02,
        }
    };
    let sort_params = if quick {
        sortbench::SortParams {
            total_keys: 48_000,
            seed: 12,
            sample_per_pe: 16,
        }
    } else {
        sortbench::SortParams {
            total_keys: 1_000_000,
            seed: 12,
            sample_per_pe: 32,
        }
    };
    let primes_params = if quick {
        primes::PrimesParams {
            limit: 50_000,
            chunks: 128,
        }
    } else {
        primes::PrimesParams {
            limit: 400_000,
            chunks: 1024,
        }
    };
    vec![
        AppCase {
            name: "fib",
            params: format!("{fib_params:?}"),
            build: Box::new(move |q, b| fib::build(fib_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::acwn(),
        },
        AppCase {
            name: "nqueens",
            params: format!("{queens_params:?}"),
            build: Box::new(move |q, b| nqueens::build(queens_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Random,
        },
        AppCase {
            name: "tsp",
            params: format!("{tsp_params:?}"),
            build: Box::new(move |q, b| tsp::build(tsp_params, q, b)),
            queueing: QueueingStrategy::BitvecPriority,
            balance: BalanceStrategy::Random,
        },
        AppCase {
            name: "puzzle",
            params: format!("{puzzle_params:?}"),
            build: Box::new(move |q, b| puzzle::build(puzzle_params, q, b)),
            queueing: QueueingStrategy::IntPriority,
            balance: BalanceStrategy::Random,
        },
        AppCase {
            name: "jacobi",
            params: format!("{jacobi_params:?}"),
            build: Box::new(move |q, b| jacobi::build(jacobi_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Local,
        },
        AppCase {
            name: "matmul",
            params: format!("{matmul_params:?}"),
            build: Box::new(move |q, b| matmul::build(matmul_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Local,
        },
        AppCase {
            name: "quad",
            params: format!("{quad_params:?}"),
            build: Box::new(move |q, b| quad::build(quad_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::acwn(),
        },
        AppCase {
            name: "sort",
            params: format!("{sort_params:?}"),
            build: Box::new(move |q, b| sortbench::build(sort_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Local,
        },
        AppCase {
            name: "primes",
            params: format!("{primes_params:?}"),
            build: Box::new(move |q, b| primes::build(primes_params, q, b)),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Random,
        },
    ]
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Host-measured cell (threads/procs wall-clock, host-scheduling-
/// dependent message counts): the only nondeterministic bytes in the
/// whole evaluation. The CI byte-identity diffs set
/// `CK_TABLES_REDACT_HOST=1` so `--all` output compares clean across
/// invocations; normal runs print the real measurement.
fn host_cell(value: String) -> String {
    let redact =
        std::env::var("CK_TABLES_REDACT_HOST").map(|v| v == "1").unwrap_or(false);
    if redact {
        "host".into()
    } else {
        value
    }
}

/// Table 1: benchmark characteristics on a 16-PE NCUBE-like machine.
pub fn table1(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 1: benchmark characteristics (16-PE simulated NCUBE-like hypercube)",
        &[
            "program",
            "chares",
            "entries",
            "user msgs",
            "KB moved",
            "sim ms",
        ],
    );
    for case in standard_suite(scale) {
        let rep = crate::runner::run_preset(&case.label(), 16, MachinePreset::NcubeLike, || {
            case.build_default()
        });
        let bytes = rep.sim.as_ref().map(|s| s.bytes).unwrap_or(0);
        t.row(vec![
            case.name.into(),
            rep.counter_total("chares_created").to_string(),
            rep.counter_total("entries_executed").to_string(),
            rep.counter_total("user_sent").to_string(),
            format!("{:.0}", bytes as f64 / 1024.0),
            ms(rep.time_ns),
        ]);
    }
    t.note("default strategies per program; deterministic simulator run");
    t
}

/// Speedup rows for one machine preset across PE counts.
fn speedup_table(title: &str, preset: MachinePreset, scale: Scale, pes: &[usize]) -> Table {
    let mut headers: Vec<String> = vec!["program".into()];
    headers.extend(pes.iter().map(|p| format!("P={p}")));
    let mut t = Table {
        title: title.into(),
        headers,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    for case in standard_suite(scale) {
        let label = case.label();
        let t1 = crate::runner::run_preset(&label, 1, preset, || case.build_default()).time_ns;
        let mut row = vec![case.name.to_string()];
        for &p in pes {
            let tp = crate::runner::run_preset(&label, p, preset, || case.build_default()).time_ns;
            row.push(format!("{:.2}", t1 as f64 / tp as f64));
        }
        t.row(row);
    }
    t.note(format!(
        "speedup = T(1)/T(P), simulated time on {preset:?}; T(1) includes kernel overhead"
    ));
    t
}

/// Table 2: speedups on the simulated nonshared-memory hypercube.
pub fn table2(scale: Scale) -> Table {
    speedup_table(
        "Table 2: speedup on the simulated NCUBE-like hypercube",
        MachinePreset::NcubeLike,
        scale,
        scale.pes(),
    )
}

/// Table 3: speedups on the simulated shared-bus machine (the
/// Sequent-class port). Bus machines of the era topped out well below
/// the hypercubes' PE counts.
pub fn table3(scale: Scale) -> Table {
    let pes: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4, 8],
        Scale::Full => &[1, 2, 4, 8, 16, 24],
    };
    speedup_table(
        "Table 3: speedup on the simulated shared-bus multiprocessor",
        MachinePreset::SharedBusLike,
        scale,
        pes,
    )
}

/// Table 7: speedups on the second simulated nonshared-memory machine
/// (iPSC/2-like: higher software overhead, faster links) — the paper's
/// cross-machine portability evidence.
pub fn table7(scale: Scale) -> Table {
    speedup_table(
        "Table 7: speedup on the simulated iPSC-like hypercube",
        MachinePreset::IpscLike,
        scale,
        scale.pes(),
    )
}

/// Table 4: dynamic load balancing strategies on the adaptive tree
/// workloads.
pub fn table4(scale: Scale) -> Table {
    let npes = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let strategies = [
        BalanceStrategy::Local,
        BalanceStrategy::Random,
        BalanceStrategy::CentralManager,
        BalanceStrategy::TokenIdle,
        BalanceStrategy::acwn(),
    ];
    let mut t = Table::new(
        format!("Table 4: load balancing strategies ({npes}-PE simulated hypercube)"),
        &[
            "program",
            "strategy",
            "sim ms",
            "speedup",
            "imbalance",
            "seeds fwd",
        ],
    );
    for case in standard_suite(scale)
        .into_iter()
        .filter(|c| c.name == "fib" || c.name == "nqueens")
    {
        let t1 = crate::runner::run_preset(
            &case.label_with(case.queueing, &BalanceStrategy::Local, false),
            1,
            MachinePreset::NcubeLike,
            || (case.build)(case.queueing, BalanceStrategy::Local),
        )
        .time_ns;
        for strat in &strategies {
            let rep = crate::runner::run_preset(
                &case.label_with(case.queueing, strat, false),
                npes,
                MachinePreset::NcubeLike,
                || (case.build)(case.queueing, strat.clone()),
            );
            let imb = rep.sim.as_ref().map(|s| s.imbalance).unwrap_or(f64::NAN);
            t.row(vec![
                case.name.into(),
                strat.name().into(),
                ms(rep.time_ns),
                format!("{:.2}", t1 as f64 / rep.time_ns as f64),
                format!("{imb:.2}"),
                rep.counter_total("seeds_forwarded").to_string(),
            ]);
        }
    }
    t.note("imbalance = max PE busy time / mean (1.0 is perfect)");
    t
}

/// Table 5: queueing strategies and speculative search overhead.
pub fn table5(scale: Scale) -> Table {
    let npes = match scale {
        Scale::Quick => 8,
        Scale::Full => 16,
    };
    let mut t = Table::new(
        format!("Table 5: queueing strategy vs search overhead ({npes}-PE simulated hypercube)"),
        &["program", "queueing", "nodes", "vs seq", "sim ms"],
    );
    // Sequential node counts as the baseline.
    let (tsp_params, puzzle_params) = match scale {
        Scale::Quick => (
            tsp::TspParams {
                n: 11,
                seed: 7,
                seq_tail: 6,
            },
            puzzle::PuzzleParams {
                scramble: 52,
                seed: 5,
                split_depth: 7,
            },
        ),
        Scale::Full => (
            tsp::TspParams {
                n: 13,
                seed: 7,
                seq_tail: 7,
            },
            puzzle::PuzzleParams {
                scramble: 52,
                seed: 5,
                split_depth: 9,
            },
        ),
    };
    let inst = tsp::TspInstance::random(tsp_params.n as usize, tsp_params.seed);
    let (_, tsp_seq_nodes) = tsp::tsp_seq(&inst);
    let start = puzzle::scramble(puzzle_params.scramble, puzzle_params.seed);
    let (_, puz_seq_nodes) = puzzle::ida_seq(start);

    for q in QueueingStrategy::ALL {
        let label = crate::runner::scenario_label(
            "tsp",
            &format!("{tsp_params:?}"),
            q,
            &BalanceStrategy::Random,
            false,
        );
        let rep = crate::runner::run_preset(&label, npes, MachinePreset::NcubeLike, || {
            tsp::build(tsp_params, q, BalanceStrategy::Random)
        });
        let res = *rep.result_ref::<tsp::TspResult>().expect("tsp result");
        t.row(vec![
            "tsp".into(),
            q.name().into(),
            res.nodes.to_string(),
            format!("{:.2}x", res.nodes as f64 / tsp_seq_nodes as f64),
            ms(rep.time_ns),
        ]);
    }
    for q in QueueingStrategy::ALL {
        let label = crate::runner::scenario_label(
            "puzzle",
            &format!("{puzzle_params:?}"),
            q,
            &BalanceStrategy::Random,
            false,
        );
        let rep = crate::runner::run_preset(&label, npes, MachinePreset::NcubeLike, || {
            puzzle::build(puzzle_params, q, BalanceStrategy::Random)
        });
        let res = *rep
            .result_ref::<puzzle::PuzzleResult>()
            .expect("puzzle result");
        t.row(vec![
            "puzzle".into(),
            q.name().into(),
            res.nodes.to_string(),
            format!("{:.2}x", res.nodes as f64 / puz_seq_nodes as f64),
            ms(rep.time_ns),
        ]);
    }
    t.note(format!(
        "sequential baselines: tsp {tsp_seq_nodes} nodes, puzzle {puz_seq_nodes} nodes"
    ));
    t
}

/// Table 6: kernel overhead vs hand-coded message passing.
pub fn table6(scale: Scale) -> Table {
    let mut t = Table::new(
        "Table 6: kernel overhead vs hand-coded message passing (simulated NCUBE-like)",
        &["experiment", "hand-coded", "kernel", "ratio"],
    );
    let rounds = 500;
    for bytes in [0u32, 64, 1024] {
        let raw = raw_pingpong(rounds, bytes, MachinePreset::NcubeLike);
        let label = format!("pingpong:rounds={rounds}:bytes={bytes}");
        let kernel = crate::runner::run_preset(&label, 2, MachinePreset::NcubeLike, || {
            kernel_pingpong(rounds, bytes)
        })
        .time_ns;
        let per_raw = raw as f64 / (2 * rounds) as f64 / 1000.0;
        let per_k = kernel as f64 / (2 * rounds) as f64 / 1000.0;
        t.row(vec![
            format!("ping-pong {bytes}B (us/msg)"),
            format!("{per_raw:.1}"),
            format!("{per_k:.1}"),
            format!("{:.2}", per_k / per_raw),
        ]);
    }
    let params = match scale {
        Scale::Quick => jacobi::JacobiParams { n: 64, iters: 10 },
        Scale::Full => jacobi::JacobiParams { n: 256, iters: 25 },
    };
    // Same label shape as the suite's jacobi default (Fifo + Local), so
    // at full scale these cells share the suite's 4- and 8-PE runs.
    let jacobi_label = crate::runner::scenario_label(
        "jacobi",
        &format!("{params:?}"),
        QueueingStrategy::Fifo,
        &BalanceStrategy::Local,
        false,
    );
    for npes in [4usize, 8] {
        let (_, raw_t) = raw_jacobi(params, npes, MachinePreset::NcubeLike);
        let kernel_t = crate::runner::run_preset(&jacobi_label, npes, MachinePreset::NcubeLike, || {
            jacobi::build_default(params)
        })
        .time_ns;
        t.row(vec![
            format!("jacobi {}^2 x{} P={npes} (ms)", params.n, params.iters),
            ms(raw_t),
            ms(kernel_t),
            format!("{:.2}", kernel_t as f64 / raw_t as f64),
        ]);
    }
    t.note("ratio = kernel / hand-coded; the envelope+scheduling tax");
    t
}

/// Figure 1: speedup curves (CSV series, one row per PE count).
pub fn fig1(scale: Scale) -> Table {
    let pes = scale.pes();
    let suite = standard_suite(scale);
    let mut headers: Vec<String> = vec!["P".into()];
    headers.extend(suite.iter().map(|c| c.name.to_string()));
    let mut t = Table {
        title: "Figure 1: speedup vs PE count (simulated NCUBE-like hypercube)".into(),
        headers,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    let t1s: Vec<u64> = suite
        .iter()
        .map(|c| {
            crate::runner::run_preset(&c.label(), 1, MachinePreset::NcubeLike, || c.build_default())
                .time_ns
        })
        .collect();
    for &p in pes {
        let mut row = vec![p.to_string()];
        for (case, &t1) in suite.iter().zip(&t1s) {
            let tp = crate::runner::run_preset(&case.label(), p, MachinePreset::NcubeLike, || {
                case.build_default()
            })
            .time_ns;
            row.push(format!("{:.2}", t1 as f64 / tp as f64));
        }
        t.row(row);
    }
    t
}

/// Figure 2: grain-size sensitivity of fib.
pub fn fig2(scale: Scale) -> Table {
    let (n, npes, grains): (u32, usize, &[u32]) = match scale {
        Scale::Quick => (24, 16, &[8, 10, 12, 14, 16, 18, 20]),
        Scale::Full => (30, 64, &[10, 12, 14, 16, 18, 20, 22, 24]),
    };
    let mut t = Table::new(
        format!("Figure 2: grain-size sensitivity, fib({n}) on {npes} PEs (simulated hypercube)"),
        &["grain", "chares", "sim ms", "speedup"],
    );
    for &grain in grains {
        let params = fib::FibParams { n, grain };
        // fib's default strategies are the suite's (Fifo + ACWN), so the
        // suite-default grain shares runs with Tables 1/2/8, Figure 1.
        let label = crate::runner::scenario_label(
            "fib",
            &format!("{params:?}"),
            QueueingStrategy::Fifo,
            &BalanceStrategy::acwn(),
            false,
        );
        let t1 = crate::runner::run_preset(&label, 1, MachinePreset::NcubeLike, || {
            fib::build_default(params)
        })
        .time_ns;
        let rep = crate::runner::run_preset(&label, npes, MachinePreset::NcubeLike, || {
            fib::build_default(params)
        });
        t.row(vec![
            grain.to_string(),
            rep.counter_total("chares_created").to_string(),
            ms(rep.time_ns),
            format!("{:.2}", t1 as f64 / rep.time_ns as f64),
        ]);
    }
    t.note("too fine a grain drowns in per-message overhead; too coarse starves PEs");
    t
}

/// Figure 3: load evolution under random vs ACWN placement (sampled
/// per-PE backlog spread over time).
pub fn fig3(scale: Scale) -> Table {
    let npes = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let params = match scale {
        Scale::Quick => nqueens::QueensParams { n: 10, grain: 6 },
        Scale::Full => nqueens::QueensParams { n: 12, grain: 7 },
    };
    let mut t = Table::new(
        format!("Figure 3: queue-length evolution, nqueens on {npes}-PE simulated hypercube"),
        &[
            "strategy",
            "sample t(ms)",
            "max backlog",
            "mean backlog",
            "idle PEs",
        ],
    );
    for strat in [BalanceStrategy::Random, BalanceStrategy::acwn()] {
        let prog = nqueens::build(params, QueueingStrategy::Fifo, strat.clone());
        let cfg = SimConfig::preset(npes, MachinePreset::NcubeLike)
            .with_sampling(Cost::millis(1));
        let rep = prog.run_sim(cfg);
        let sim = rep.sim.as_ref().expect("sim detail");
        for s in sim.samples.iter().take(12) {
            t.row(vec![
                strat.name().into(),
                format!("{:.1}", s.at_ns as f64 / 1e6),
                s.max.to_string(),
                format!("{:.1}", s.mean()),
                s.idle.to_string(),
            ]);
        }
    }
    t.note("1 ms sampling; first 12 samples shown per strategy");
    t
}

/// Figure 4: search overhead vs PE count for TSP under FIFO vs
/// bitvector priorities (the speculative-work anomaly).
pub fn fig4(scale: Scale) -> Table {
    let params = match scale {
        Scale::Quick => tsp::TspParams {
            n: 11,
            seed: 7,
            seq_tail: 6,
        },
        Scale::Full => tsp::TspParams {
            n: 13,
            seed: 7,
            seq_tail: 7,
        },
    };
    let pes: &[usize] = match scale {
        Scale::Quick => &[1, 4, 16],
        Scale::Full => &[1, 4, 16, 64],
    };
    let inst = tsp::TspInstance::random(params.n as usize, params.seed);
    let (_, seq_nodes) = tsp::tsp_seq(&inst);
    let mut t = Table::new(
        format!(
            "Figure 4: TSP search overhead vs P (n={}, sequential = {seq_nodes} nodes)",
            params.n
        ),
        &["P", "fifo nodes", "fifo ratio", "bitvec nodes", "bitvec ratio"],
    );
    let params_dbg = format!("{params:?}");
    for &p in pes {
        let fifo_label = crate::runner::scenario_label(
            "tsp",
            &params_dbg,
            QueueingStrategy::Fifo,
            &BalanceStrategy::Random,
            false,
        );
        let fifo_rep = crate::runner::run_preset(&fifo_label, p, MachinePreset::NcubeLike, || {
            tsp::build(params, QueueingStrategy::Fifo, BalanceStrategy::Random)
        });
        let fifo = *fifo_rep.result_ref::<tsp::TspResult>().expect("result");
        // Bitvec + Random is tsp's suite default: these cells share the
        // speedup tables' runs.
        let prio_label = crate::runner::scenario_label(
            "tsp",
            &params_dbg,
            QueueingStrategy::BitvecPriority,
            &BalanceStrategy::Random,
            false,
        );
        let prio_rep = crate::runner::run_preset(&prio_label, p, MachinePreset::NcubeLike, || {
            tsp::build(
                params,
                QueueingStrategy::BitvecPriority,
                BalanceStrategy::Random,
            )
        });
        let prio = *prio_rep.result_ref::<tsp::TspResult>().expect("result");
        t.row(vec![
            p.to_string(),
            fifo.nodes.to_string(),
            format!("{:.2}", fifo.nodes as f64 / seq_nodes as f64),
            prio.nodes.to_string(),
            format!("{:.2}", prio.nodes as f64 / seq_nodes as f64),
        ]);
    }
    t.note("ratio = parallel nodes expanded / sequential; 1.00 is no wasted speculation");
    t
}

/// Table 8: communication profile of every benchmark — message volume,
/// sizes and locality, the data behind the grain discussion.
pub fn table8(scale: Scale) -> Table {
    let npes = 16;
    let mut t = Table::new(
        format!("Table 8: communication profile ({npes}-PE simulated NCUBE-like hypercube)"),
        &[
            "program",
            "packets",
            "avg B/pkt",
            "pkts/entry",
            "KB/PE",
            "peak backlog",
        ],
    );
    for case in standard_suite(scale) {
        let rep = crate::runner::run_preset(&case.label(), npes, MachinePreset::NcubeLike, || {
            case.build_default()
        });
        let sim = rep.sim.as_ref().expect("sim detail");
        let entries = rep.counter_total("entries_executed").max(1);
        t.row(vec![
            case.name.into(),
            sim.packets.to_string(),
            format!("{:.0}", sim.bytes as f64 / sim.packets.max(1) as f64),
            format!("{:.2}", sim.packets as f64 / entries as f64),
            format!("{:.0}", sim.bytes as f64 / npes as f64 / 1024.0),
            rep.counter_total("queue_hwm").to_string(),
        ]);
    }
    t.note("peak backlog = sum over PEs of each PE's backlog high-water mark");
    t
}

/// Figure 5 (ablation): spanning-tree vs direct broadcast. A
/// barrier-style program does `rounds` broadcast+gather cycles; the
/// per-round time isolates broadcast latency. The tree's O(log P)
/// advantage over the root-serialized O(P) loop grows with P.
pub fn fig5(scale: Scale) -> Table {
    use chare_kernel::BroadcastMode;

    let (rounds, pes): (u32, &[usize]) = match scale {
        Scale::Quick => (20, &[4, 16, 64]),
        Scale::Full => (20, &[4, 16, 64, 128, 256]),
    };
    let mut t = Table::new(
        format!("Figure 5 (ablation): broadcast mode, {rounds}-round broadcast/gather"),
        &["P", "direct us/round", "tree us/round", "tree gain"],
    );
    for &p in pes {
        let per_round = |mode: BroadcastMode| {
            let label = format!("sync:rounds={rounds}:mode={mode:?}");
            let rep = crate::runner::run_preset(&label, p, MachinePreset::NcubeLike, || {
                sync_rounds_program(rounds, mode)
            });
            rep.time_ns as f64 / rounds as f64 / 1000.0
        };
        let direct = per_round(BroadcastMode::Direct);
        let tree = per_round(BroadcastMode::Tree);
        t.row(vec![
            p.to_string(),
            format!("{direct:.1}"),
            format!("{tree:.1}"),
            format!("{:.2}x", direct / tree),
        ]);
    }
    t.note("broadcast+gather over a branch-office chare; NCUBE-like cost model");
    t.note("tree pays extra hop latency at small P, wins once root NIC serialization dominates");
    t
}

/// Barrier-style broadcast/gather microbenchmark used by `fig5`.
pub fn sync_rounds_program(rounds: u32, mode: chare_kernel::BroadcastMode) -> Program {
    use sync_rounds::*;
    let mut b = ProgramBuilder::new();
    let main = b.chare::<SyncMain>();
    let boc = b.boc::<SyncBranch>(());
    b.broadcast_mode(mode);
    b.main(main, SyncSeed { rounds, boc });
    b.build()
}

mod sync_rounds {
    use chare_kernel::prelude::*;

    pub const EP_ROUND: EpId = EpId(1);
    pub const EP_ACK: EpId = EpId(2);

    #[derive(Clone)]
    pub struct SyncSeed {
        pub rounds: u32,
        pub boc: Boc<SyncBranch>,
    }
    message!(SyncSeed);

    /// One round message (cloned per branch by the broadcast).
    #[derive(Clone, Copy)]
    pub struct RoundMsg {
        pub round: u32,
        pub main: ChareId,
    }
    message!(RoundMsg);

    pub struct SyncMain {
        rounds: u32,
        current: u32,
        acks: usize,
        boc: Boc<SyncBranch>,
    }

    impl SyncMain {
        fn launch(&mut self, ctx: &mut Ctx) {
            let me = ctx.self_id();
            ctx.broadcast_branch(
                self.boc,
                EP_ROUND,
                RoundMsg {
                    round: self.current,
                    main: me,
                },
            );
        }
    }

    impl ChareInit for SyncMain {
        type Seed = SyncSeed;
        fn create(seed: SyncSeed, ctx: &mut Ctx) -> Self {
            let mut main = SyncMain {
                rounds: seed.rounds,
                current: 0,
                acks: 0,
                boc: seed.boc,
            };
            main.launch(ctx);
            main
        }
    }

    impl Chare for SyncMain {
        fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
            debug_assert_eq!(ep, EP_ACK);
            let round = cast::<u32>(msg);
            debug_assert_eq!(round, self.current);
            self.acks += 1;
            if self.acks == ctx.npes() {
                self.acks = 0;
                self.current += 1;
                if self.current == self.rounds {
                    ctx.exit(self.current);
                } else {
                    self.launch(ctx);
                }
            }
        }
    }

    pub struct SyncBranch;

    impl BranchInit for SyncBranch {
        type Cfg = ();
        fn create(_cfg: (), _ctx: &mut Ctx) -> Self {
            SyncBranch
        }
    }

    impl Branch for SyncBranch {
        fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
            debug_assert_eq!(ep, EP_ROUND);
            let m = cast::<RoundMsg>(msg);
            ctx.send(m.main, EP_ACK, m.round);
        }
    }
}

/// Figure 6: utilization over time (the mini-Projections view) for
/// nqueens under random vs ACWN placement.
pub fn fig6(scale: Scale) -> Table {
    let npes = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let params = match scale {
        Scale::Quick => nqueens::QueensParams { n: 10, grain: 6 },
        Scale::Full => nqueens::QueensParams { n: 12, grain: 7 },
    };
    const BUCKETS: usize = 10;
    let mut t = Table::new(
        format!("Figure 6: PE utilization over time, nqueens on {npes} PEs (10 slices)"),
        &["slice", "random mean%", "random max%", "acwn mean%", "acwn max%"],
    );
    let profile = |strategy: BalanceStrategy| {
        let prog = nqueens::build(params, QueueingStrategy::Fifo, strategy);
        let mut cfg = SimConfig::preset(npes, MachinePreset::NcubeLike);
        cfg.trace = true;
        let rep = prog.run_sim(cfg);
        let sim = rep.sim.as_ref().expect("sim detail");
        multicomputer::utilization_profile(
            &sim.timeline,
            npes,
            rep.time_ns,
            BUCKETS,
        )
    };
    let rnd = profile(BalanceStrategy::Random);
    let acwn = profile(BalanceStrategy::acwn());
    for b in 0..BUCKETS {
        let stats = |row: &Vec<f64>| {
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            let max = row.iter().cloned().fold(0.0f64, f64::max);
            (mean * 100.0, max * 100.0)
        };
        let (rm, rx) = stats(&rnd[b]);
        let (am, ax) = stats(&acwn[b]);
        t.row(vec![
            format!("{}", b + 1),
            format!("{rm:.0}"),
            format!("{rx:.0}"),
            format!("{am:.0}"),
            format!("{ax:.0}"),
        ]);
    }
    t.note("slices normalize each run to its own completion time");
    t
}

/// Figure 7 (ablation): ACWN parameters — hop budget and contraction
/// low-mark — on the fib tree.
pub fn fig7(scale: Scale) -> Table {
    let (npes, params) = match scale {
        Scale::Quick => (16, fib::FibParams { n: 24, grain: 14 }),
        Scale::Full => (64, fib::FibParams { n: 30, grain: 16 }),
    };
    let mut t = Table::new(
        format!("Figure 7 (ablation): ACWN parameters, fib on {npes} PEs"),
        &["max_hops", "low_mark", "sim ms", "speedup", "seeds fwd"],
    );
    let params_dbg = format!("{params:?}");
    let t1 = crate::runner::run_preset(
        &crate::runner::scenario_label(
            "fib",
            &params_dbg,
            QueueingStrategy::Fifo,
            &BalanceStrategy::Local,
            false,
        ),
        1,
        MachinePreset::NcubeLike,
        || fib::build(params, QueueingStrategy::Fifo, BalanceStrategy::Local),
    )
    .time_ns;
    for max_hops in [1u32, 2, 4, 8] {
        for low_mark in [1u32, 2, 4] {
            let strat = BalanceStrategy::Acwn { max_hops, low_mark };
            let label = crate::runner::scenario_label(
                "fib",
                &params_dbg,
                QueueingStrategy::Fifo,
                &strat,
                false,
            );
            let rep = crate::runner::run_preset(&label, npes, MachinePreset::NcubeLike, || {
                fib::build(params, QueueingStrategy::Fifo, strat.clone())
            });
            t.row(vec![
                max_hops.to_string(),
                low_mark.to_string(),
                ms(rep.time_ns),
                format!("{:.2}", t1 as f64 / rep.time_ns as f64),
                rep.counter_total("seeds_forwarded").to_string(),
            ]);
        }
    }
    t.note("max_hops = forwarding budget per seed; low_mark = keep-local backlog threshold");
    t
}

/// Figure 8 (ablation): message combining on the fine-grain tree
/// workloads — one software alpha per destination per step instead of
/// one per message.
pub fn fig8(scale: Scale) -> Table {
    let npes = match scale {
        Scale::Quick => 16,
        Scale::Full => 64,
    };
    let mut t = Table::new(
        format!("Figure 8 (ablation): message combining ({npes}-PE simulated hypercube)"),
        &["program", "combining", "sim ms", "packets", "avg B/pkt"],
    );
    for case in standard_suite(scale)
        .into_iter()
        .filter(|c| matches!(c.name, "primes" | "sort" | "fib" | "tsp"))
    {
        for combining in [false, true] {
            // Rebuild the program with the combining flag via the
            // strategy-parameterized constructor plus a builder knob:
            // the AppCase builder closes over everything else. The
            // combining-off arm is the suite default and shares runs
            // with the speedup tables.
            let label = case.label_with(case.queueing, &case.balance, combining);
            let rep = crate::runner::run_preset(&label, npes, MachinePreset::NcubeLike, || {
                let prog = (case.build)(case.queueing, case.balance.clone());
                if combining {
                    prog.with_combining()
                } else {
                    prog
                }
            });
            let sim = rep.sim.as_ref().expect("sim detail");
            t.row(vec![
                case.name.into(),
                if combining { "on" } else { "off" }.into(),
                ms(rep.time_ns),
                sim.packets.to_string(),
                format!("{:.0}", sim.bytes as f64 / sim.packets.max(1) as f64),
            ]);
        }
    }
    t.note("combining batches all remote messages a handler produces, per destination");
    t.note("helps fine-grain scatter (primes); neutral for bulk (sort: big messages bypass batching); hurts speculative search (tsp: delayed bounds)");
    t
}

/// Table R: resilience under injected faults — completion time and
/// message overhead as the simulated network degrades, with the kernel's
/// reliable-delivery layer enabled. The faults are deterministic (seeded
/// PRNG), so every cell is reproducible.
pub fn table_r(scale: Scale) -> Table {
    let npes = 16;
    // The default timeout (5 ms) rides well above the loaded round trip
    // of every app here — sort's large records inflate the RTT the most
    // — so retransmissions repair real losses instead of chasing acks
    // that are merely queued behind a busy NIC.
    let rel = ReliableConfig {
        seed_retry_limit: 3,
        ..ReliableConfig::default()
    };
    // Drop-rate sweep, plus a mid-run PE stall on top of the 5% case.
    let cases: &[(&str, f64, bool)] = &[
        ("1% drop", 0.01, false),
        ("5% drop", 0.05, false),
        ("10% drop", 0.10, false),
        ("5% + stall", 0.05, true),
    ];
    let mut t = Table::new(
        format!("Table R: resilience under injected faults ({npes}-PE simulated NCUBE-like hypercube, reliable delivery on)"),
        &[
            "program",
            "faults",
            "sim ms",
            "time x",
            "packets",
            "msg x",
            "retransmits",
            "dups dropped",
        ],
    );
    for case in standard_suite(scale)
        .into_iter()
        .filter(|c| matches!(c.name, "fib" | "nqueens" | "jacobi" | "sort"))
    {
        let clean = crate::runner::run_preset(&case.label(), npes, MachinePreset::NcubeLike, || {
            case.build_default()
        });
        let clean_pkts = clean.sim.as_ref().expect("sim detail").packets;
        t.row(vec![
            case.name.into(),
            "none".into(),
            ms(clean.time_ns),
            "1.00".into(),
            clean_pkts.to_string(),
            "1.00".into(),
            "0".into(),
            "0".into(),
        ]);
        for &(label, drop, stall) in cases {
            let mut plan = FaultPlan::new(0xC4A11).drop(drop).duplicate(0.01);
            if stall {
                plan = plan.stall(Pe(5), SimTime(500_000), SimTime(2_000_000));
            }
            let cfg = SimConfig::preset(npes, MachinePreset::NcubeLike).with_faults(plan);
            let rep = case.build_default().with_reliable(rel).run_sim(cfg);
            let sim = rep.sim.as_ref().expect("sim detail");
            assert!(
                sim.aborted.is_none(),
                "{} aborted under {label}: {:?}",
                case.name,
                sim.aborted
            );
            t.row(vec![
                case.name.into(),
                label.into(),
                ms(rep.time_ns),
                format!("{:.2}", rep.time_ns as f64 / clean.time_ns as f64),
                sim.packets.to_string(),
                format!("{:.2}", sim.packets as f64 / clean_pkts as f64),
                rep.counter_total("retransmits").to_string(),
                rep.counter_total("dup_dropped").to_string(),
            ]);
        }
    }
    t.note("per-packet drop/duplicate probabilities; faults injected deterministically from a fixed seed");
    t.note("time x / msg x are ratios to the fault-free, reliability-off run of the same program");
    t.note("stall case additionally freezes PE 5 from 0.5 ms to 2.0 ms of simulated time");
    t.note(format!(
        "retransmit timeout {} us, seed retry budget {}",
        rel.timeout.as_nanos() / 1_000,
        rel.seed_retry_limit
    ));
    t
}

/// Table B: cross-backend conformance — the same three programs on the
/// event-driven simulator, the shared-memory threads backend, and the
/// multi-process socket backend, with answers asserted byte-identical
/// across all three before the table renders.
pub fn table_b(scale: Scale) -> Table {
    table_b_cfg(scale, &|npes, spec| ProcConfig::new(npes, spec))
}

/// [`table_b`] with an explicit `ProcConfig` constructor: the `tables`
/// binary uses the plain binary re-invocation contract
/// (`ProcConfig::new`), while the unit test routes worker re-invocation
/// through the test harness (`ProcConfig::for_test`).
pub fn table_b_cfg(scale: Scale, proc_cfg: &dyn Fn(usize, &str) -> ProcConfig) -> Table {
    let npes = 4;
    let specs: &[(&str, &str)] = match scale {
        Scale::Quick => &[
            ("fib", "fib:n=18,grain=11"),
            ("jacobi", "jacobi:n=24,iters=8"),
            ("matmul", "matmul:n=32"),
        ],
        Scale::Full => &[
            ("fib", "fib:n=22,grain=12"),
            ("jacobi", "jacobi:n=48,iters=12"),
            ("matmul", "matmul:n=64"),
        ],
    };
    let mut t = Table::new(
        format!(
            "Table B: cross-backend conformance ({npes} PEs: simulator / threads / processes)"
        ),
        &["program", "backend", "answer", "time ms", "user msgs"],
    );
    for &(name, spec_str) in specs {
        // `{:?}` on f64 is the shortest round-trip rendering: two
        // answers print identically iff they are bit-identical.
        let answer = |rep: &CkReport| -> String {
            if name == "fib" {
                rep.result_ref::<u64>().expect("u64 result").to_string()
            } else {
                format!("{:?}", rep.result_ref::<f64>().expect("f64 result"))
            }
        };
        let sim =
            ck_apps::spec::build_spec(spec_str).run_sim_preset(npes, MachinePreset::NcubeLike);
        let thr = ck_apps::spec::build_spec(spec_str).run_threads(npes);
        assert!(!thr.timed_out, "{name} threads run timed out");
        let prc = ck_apps::spec::build_spec(spec_str).run_procs(&proc_cfg(npes, spec_str));
        let detail = prc.proc.as_ref().expect("procs detail");
        assert!(
            detail.aborted.is_none(),
            "{name} procs run aborted: {}",
            detail.aborted.as_ref().unwrap()
        );
        assert!(!prc.timed_out, "{name} procs run timed out");
        let want = answer(&sim);
        for (backend, rep) in [("sim", &sim), ("threads", &thr), ("procs", &prc)] {
            let got = answer(rep);
            assert_eq!(got, want, "{name}: {backend} answer diverges from sim");
            let time = ms(rep.time_ns);
            let msgs = rep.counter_total("user_sent").to_string();
            let (time, msgs) = if backend == "sim" {
                (time, msgs)
            } else {
                (host_cell(time), host_cell(msgs))
            };
            t.row(vec![name.into(), backend.into(), got, time, msgs]);
        }
    }
    t.note("answers asserted byte-identical across the three backends before rendering");
    t.note("sim times are simulated NCUBE-like ms; threads/procs times are host wall-clock ms");
    t
}

/// Table H: the hash-tree & pipelined table-fill workload family —
/// MMR speedup across PE counts (roots checked against the serial
/// reference), MMR roots asserted byte-identical across all three
/// backends, and the pipelined fill under FIFO vs bitvector-priority
/// queueing with per-stage completion profiles.
pub fn table_h(scale: Scale) -> Table {
    table_h_cfg(scale, &|npes, spec| ProcConfig::new(npes, spec))
}

/// [`table_h`] with an explicit `ProcConfig` constructor (same pattern
/// as [`table_b_cfg`]: the unit test re-enters the test binary).
pub fn table_h_cfg(scale: Scale, proc_cfg: &dyn Fn(usize, &str) -> ProcConfig) -> Table {
    let (mmr_params, fill_params) = match scale {
        Scale::Quick => (
            mmr::MmrParams { leaves: 2048, grain: 32, seed: 1 },
            tablefill::FillParams { stages: 4, blocks: 24, rows: 16, width: 1, seed: 1 },
        ),
        Scale::Full => (
            mmr::MmrParams { leaves: 32768, grain: 64, seed: 1 },
            tablefill::FillParams { stages: 6, blocks: 64, rows: 32, width: 2, seed: 1 },
        ),
    };
    let mut t = Table::new(
        "Table H: hash-tree & pipelined table-fill workloads",
        &["workload", "config", "where", "answer", "time ms", "speedup / stage profile"],
    );

    // -- MMR speedup across PE counts (bitvector priorities, random
    //    placement), every root checked against the serial reference.
    let root_want = mmr::mmr_root_seq(mmr_params.seed, mmr_params.leaves);
    let mmr_cfg = format!("leaves={} grain={}", mmr_params.leaves, mmr_params.grain);
    let mmr_label = crate::runner::scenario_label(
        "mmr",
        &format!("{mmr_params:?}"),
        QueueingStrategy::BitvecPriority,
        &BalanceStrategy::Random,
        false,
    );
    let mmr_build = || mmr::build_default(mmr_params);
    let t1 = crate::runner::run_preset(&mmr_label, 1, MachinePreset::NcubeLike, mmr_build).time_ns;
    for &p in scale.pes() {
        let rep = crate::runner::run_preset(&mmr_label, p, MachinePreset::NcubeLike, mmr_build);
        let got = rep.result_ref::<mmr::MmrResult>().expect("mmr result");
        assert_eq!(got.root, root_want, "P={p}: MMR root diverges from the serial reference");
        t.row(vec![
            "mmr".into(),
            mmr_cfg.clone(),
            format!("P={p}"),
            got.root.hex()[..16].into(),
            ms(rep.time_ns),
            format!("{:.2}x", t1 as f64 / rep.time_ns as f64),
        ]);
    }

    // -- MMR cross-backend conformance at 4 PEs: the same spec on the
    //    simulator, the threads backend and the process backend, roots
    //    asserted byte-identical before rendering.
    let npes = 4;
    let spec_str = format!(
        "mmr:leaves={},grain={},seed={}",
        mmr_params.leaves, mmr_params.grain, mmr_params.seed
    );
    let sim = ck_apps::spec::build_spec(&spec_str).run_sim_preset(npes, MachinePreset::NcubeLike);
    let thr = ck_apps::spec::build_spec(&spec_str).run_threads(npes);
    assert!(!thr.timed_out, "mmr threads run timed out");
    let prc = ck_apps::spec::build_spec(&spec_str).run_procs(&proc_cfg(npes, &spec_str));
    let detail = prc.proc.as_ref().expect("procs detail");
    assert!(
        detail.aborted.is_none(),
        "mmr procs run aborted: {}",
        detail.aborted.as_ref().unwrap()
    );
    assert!(!prc.timed_out, "mmr procs run timed out");
    for (backend, rep) in [("sim", &sim), ("threads", &thr), ("procs", &prc)] {
        let got = rep.result_ref::<mmr::MmrResult>().expect("mmr result");
        assert_eq!(
            got.root, root_want,
            "mmr: {backend} root diverges from the serial reference"
        );
        let time = ms(rep.time_ns);
        t.row(vec![
            "mmr".into(),
            format!("P={npes}"),
            backend.into(),
            got.root.hex()[..16].into(),
            if backend == "sim" { time } else { host_cell(time) },
            String::new(),
        ]);
    }

    // -- Pipelined fill: FIFO vs bitvector (stage, block) priorities.
    //    Same digest, visibly different per-stage completion profile.
    let fill_pes = 16;
    let digest_want = tablefill::fill_seq(&fill_params);
    let fill_cfg = format!(
        "s={} b={} w={}",
        fill_params.stages, fill_params.blocks, fill_params.width
    );
    let mut profiles: Vec<String> = Vec::new();
    for q in [QueueingStrategy::Fifo, QueueingStrategy::BitvecPriority] {
        let label = crate::runner::scenario_label(
            "tablefill",
            &format!("{fill_params:?}"),
            q,
            &BalanceStrategy::Random,
            false,
        );
        let rep = crate::runner::run_preset(&label, fill_pes, MachinePreset::NcubeLike, || {
            tablefill::build(fill_params, q, BalanceStrategy::Random)
        });
        let got = rep.result_ref::<tablefill::FillResult>().expect("fill result");
        assert_eq!(got.digest, digest_want, "q={}: fill digest diverges", q.name());
        let profile = got
            .stage_done
            .iter()
            .map(|&ns| format!("{:.0}", ns as f64 * 100.0 / rep.time_ns as f64))
            .collect::<Vec<_>>()
            .join("/");
        profiles.push(profile.clone());
        t.row(vec![
            "tablefill".into(),
            fill_cfg.clone(),
            format!("P={fill_pes} q={}", q.name()),
            format!("{:016x}", got.digest),
            ms(rep.time_ns),
            format!("stages done at {profile}% of run"),
        ]);
    }
    assert_ne!(
        profiles[0], profiles[1],
        "FIFO and bitvector priority must produce different pipeline completion profiles"
    );

    t.note("mmr roots checked against the serial reference on every run, and asserted byte-identical across sim/threads/procs (answer column shows the first 16 of 32 root nibbles)");
    t.note("sim times are simulated NCUBE-like ms; threads/procs times are host wall-clock ms");
    t.note("tablefill: stage-0 seeds released in shuffled order; bitvector (stage, block) priorities restore pipeline order, FIFO follows arrival order");
    t
}

/// Every experiment, in order (serial; see [`crate::driver::run_all`]
/// for the thread-parallel form — the output is identical).
pub fn all(scale: Scale) -> Vec<Table> {
    crate::driver::run_all(scale, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_apps() {
        assert_eq!(standard_suite(Scale::Quick).len(), 9);
    }

    #[test]
    fn table1_quick_runs() {
        let t = table1(Scale::Quick);
        assert_eq!(t.rows.len(), 9);
        // Every app created at least its main chare.
        for row in &t.rows {
            let chares: u64 = row[1].parse().unwrap();
            assert!(chares >= 1, "{row:?}");
        }
    }

    #[test]
    fn table6_quick_ratios_sane() {
        let t = table6(Scale::Quick);
        for row in &t.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio > 0.8 && ratio < 3.0, "{row:?}");
        }
    }

    #[test]
    fn table7_and_8_have_one_row_per_app() {
        assert_eq!(table7(Scale::Quick).rows.len(), 9);
        assert_eq!(table8(Scale::Quick).rows.len(), 9);
    }

    #[test]
    fn fig5_quick_tree_gain_grows_with_p() {
        let t = fig5(Scale::Quick);
        let gains: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].trim_end_matches('x').parse().unwrap())
            .collect();
        assert!(gains.last().unwrap() > gains.first().unwrap());
    }

    #[test]
    fn fig7_covers_the_parameter_grid() {
        let t = fig7(Scale::Quick);
        assert_eq!(t.rows.len(), 12); // 4 hop budgets x 3 low marks
        for row in &t.rows {
            let speedup: f64 = row[3].parse().unwrap();
            assert!(speedup > 1.0, "{row:?}");
        }
    }

    #[test]
    fn fig8_has_on_off_pairs() {
        let t = fig8(Scale::Quick);
        assert_eq!(t.rows.len(), 8); // 4 apps x on/off
        for pair in t.rows.chunks(2) {
            assert_eq!(pair[0][0], pair[1][0], "rows must pair per app");
            assert_eq!(pair[0][1], "off");
            assert_eq!(pair[1][1], "on");
        }
    }

    #[test]
    fn table_b_quick_answers_agree_across_backends() {
        // Worker re-invocations of this test binary route through the
        // harness, so the hook must run before any procs run spawns.
        ck_apps::spec::worker_hook();
        // Unit tests are registered under their full module path — the
        // `--exact` re-invocation filter must match it.
        let t = table_b_cfg(Scale::Quick, &|npes, spec| {
            ProcConfig::for_test(
                npes,
                spec,
                "experiments::tests::table_b_quick_answers_agree_across_backends",
            )
        });
        assert_eq!(t.rows.len(), 3 * 3); // 3 apps x 3 backends
        for app in t.rows.chunks(3) {
            assert_eq!(app[0][1], "sim");
            assert_eq!(app[1][1], "threads");
            assert_eq!(app[2][1], "procs");
            // table_b_cfg already asserts this; re-check the rendered
            // cells so the table itself is the artifact under test.
            assert_eq!(app[0][2], app[1][2], "{app:?}");
            assert_eq!(app[0][2], app[2][2], "{app:?}");
        }
    }

    #[test]
    fn table_h_quick_roots_agree_and_profiles_differ() {
        // Worker re-invocations of this test binary route through the
        // harness, so the hook must run before any procs run spawns.
        ck_apps::spec::worker_hook();
        let t = table_h_cfg(Scale::Quick, &|npes, spec| {
            ProcConfig::for_test(
                npes,
                spec,
                "experiments::tests::table_h_quick_roots_agree_and_profiles_differ",
            )
        });
        let pes = Scale::Quick.pes().len();
        assert_eq!(t.rows.len(), pes + 3 + 2); // speedup rows + 3 backends + 2 queueings
        // Backend rows render the identical (truncated) root.
        let backends = &t.rows[pes..pes + 3];
        assert_eq!(backends[0][2], "sim");
        assert_eq!(backends[1][2], "threads");
        assert_eq!(backends[2][2], "procs");
        assert_eq!(backends[0][3], backends[1][3]);
        assert_eq!(backends[0][3], backends[2][3]);
        // The queueing pair shares a digest but not a stage profile.
        let fills = &t.rows[pes + 3..];
        assert_eq!(fills[0][3], fills[1][3], "fill digest must not depend on queueing");
        assert_ne!(fills[0][5], fills[1][5], "profiles must differ: {fills:?}");
        // MMR speedup grows: 16 PEs beat 1 PE by at least 3x.
        let s16: f64 = t.rows[4][5].trim_end_matches('x').parse().unwrap();
        assert_eq!(t.rows[4][2], "P=16");
        assert!(s16 > 3.0, "expected >3x MMR speedup at 16 PEs, got {s16}");
    }

    #[test]
    fn table_r_quick_survives_and_retransmits() {
        let t = table_r(Scale::Quick);
        assert_eq!(t.rows.len(), 4 * 5); // 4 apps x (clean + 4 fault cases)
        for row in &t.rows {
            if row[1] == "10% drop" {
                let retx: u64 = row[6].parse().unwrap();
                assert!(retx > 0, "heavy drop must force retransmissions: {row:?}");
            }
        }
    }

    #[test]
    fn fig2_quick_has_sweet_spot() {
        let t = fig2(Scale::Quick);
        let speedups: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let best = speedups.iter().cloned().fold(f64::MIN, f64::max);
        // The best grain beats both extremes.
        assert!(best >= speedups[0]);
        assert!(best >= *speedups.last().unwrap());
    }
}
