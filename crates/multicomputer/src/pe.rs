//! Processing-element identifiers.

use std::fmt;

/// Identifier of a processing element (PE).
///
/// The Chare Kernel numbered PEs `0..P`; PE 0 conventionally hosts the
/// main chare and acts as coordinator for collective operations (the
/// paper's "host" role on the NCUBE and iPSC ports).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pe(pub u32);

impl Pe {
    /// The conventional coordinator PE.
    pub const ZERO: Pe = Pe(0);

    /// The PE number as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over all PEs of a machine with `npes` processors.
    pub fn all(npes: usize) -> impl Iterator<Item = Pe> {
        (0..npes as u32).map(Pe)
    }
}

impl fmt::Debug for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

impl fmt::Display for Pe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for Pe {
    fn from(i: usize) -> Self {
        Pe(i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..100usize {
            assert_eq!(Pe::from(i).index(), i);
        }
    }

    #[test]
    fn all_enumerates_in_order() {
        let pes: Vec<Pe> = Pe::all(4).collect();
        assert_eq!(pes, vec![Pe(0), Pe(1), Pe(2), Pe(3)]);
    }

    #[test]
    fn all_empty_machine() {
        assert_eq!(Pe::all(0).count(), 0);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", Pe(7)), "7");
        assert_eq!(format!("{:?}", Pe(7)), "PE7");
    }

    #[test]
    fn ordering_matches_numbering() {
        assert!(Pe(1) < Pe(2));
        assert_eq!(Pe::ZERO, Pe(0));
    }
}
