//! Execution tracing and utilization profiles — a miniature of the
//! *Projections* performance-analysis tool that grew out of the Chare
//! Kernel ecosystem.
//!
//! With [`SimConfig::with_trace`](crate::sim::SimConfig::with_trace) the
//! simulator records one [`TraceSpan`] per executed step; this module
//! turns the span list into a bucketed per-PE utilization profile — the
//! "utilization graph" view Projections is known for, rendered as text.

use crate::pe::Pe;
use crate::program::StepKind;

/// One executed step on one PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpan {
    /// Executing PE.
    pub pe: Pe,
    /// Start of the step, simulated ns.
    pub start_ns: u64,
    /// End of the step (start + dispatch + charged work).
    pub end_ns: u64,
    /// What ran.
    pub kind: StepKind,
}

/// Busy fraction of every PE in `buckets` equal time slices of
/// `[0, end_ns)`. Returns `profile[bucket][pe] ∈ [0, 1]`.
///
/// Spans are clipped to bucket boundaries, so a long step contributes to
/// every slice it overlaps.
pub fn utilization_profile(
    spans: &[TraceSpan],
    npes: usize,
    end_ns: u64,
    buckets: usize,
) -> Vec<Vec<f64>> {
    assert!(buckets > 0, "need at least one bucket");
    let mut profile = vec![vec![0.0f64; npes]; buckets];
    if end_ns == 0 {
        return profile;
    }
    let width = end_ns.div_ceil(buckets as u64).max(1);
    for span in spans {
        let mut t = span.start_ns;
        let end = span.end_ns.min(end_ns);
        while t < end {
            let b = ((t / width) as usize).min(buckets - 1);
            let bucket_end = ((b as u64 + 1) * width).min(end_ns);
            let overlap = end.min(bucket_end).saturating_sub(t);
            profile[b][span.pe.index()] += overlap as f64;
            if bucket_end <= t {
                break;
            }
            t = bucket_end;
        }
    }
    // Normalize each bucket by its *actual* width: when `end_ns` is not
    // divisible by `buckets`, the final bucket is narrower than `width`,
    // and dividing by the nominal width would under-report a fully busy
    // tail slice.
    for (b, row) in profile.iter_mut().enumerate() {
        let lo = b as u64 * width;
        let hi = ((b as u64 + 1) * width).min(end_ns);
        let actual = hi.saturating_sub(lo).max(1) as f64;
        for v in row.iter_mut() {
            *v /= actual;
            *v = v.min(1.0);
        }
    }
    profile
}

/// Render a utilization profile as a text chart: one line per time
/// bucket with mean utilization as a bar plus min/max across PEs.
pub fn render_profile(profile: &[Vec<f64>], end_ns: u64) -> String {
    let mut out = String::new();
    let buckets = profile.len();
    if buckets == 0 {
        return out;
    }
    let width_ns = end_ns as f64 / buckets as f64;
    out.push_str("      t(ms)  mean util                                    min   max\n");
    for (b, row) in profile.iter().enumerate() {
        let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
        // An empty row (zero PEs) must render as idle, not as the fold
        // seeds — a `fold(1.0, min)` over no elements would claim 100%.
        let (min, max) = if row.is_empty() {
            (0.0, 0.0)
        } else {
            (
                row.iter().cloned().fold(f64::INFINITY, f64::min),
                row.iter().cloned().fold(0.0f64, f64::max),
            )
        };
        let bar_len = (mean * 40.0).round() as usize;
        out.push_str(&format!(
            " {:>10.2}  |{:<40}| {:>4.0}% {:>4.0}%\n",
            (b as f64 + 0.5) * width_ns / 1e6,
            "#".repeat(bar_len),
            min * 100.0,
            max * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pe: u32, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            pe: Pe(pe),
            start_ns: start,
            end_ns: end,
            kind: StepKind::User,
        }
    }

    #[test]
    fn fully_busy_pe_fills_its_row() {
        let spans = vec![span(0, 0, 1000)];
        let p = utilization_profile(&spans, 2, 1000, 4);
        for row in &p {
            assert!((row[0] - 1.0).abs() < 1e-9, "{row:?}");
            assert_eq!(row[1], 0.0);
        }
    }

    #[test]
    fn span_clipped_across_buckets() {
        // Busy 250..750 of 1000 over 4 buckets: 0%, 100%, 100%, 0%.
        let spans = vec![span(0, 250, 750)];
        let p = utilization_profile(&spans, 1, 1000, 4);
        assert!((p[0][0] - 0.0).abs() < 1e-9);
        assert!((p[1][0] - 1.0).abs() < 1e-9);
        assert!((p[2][0] - 1.0).abs() < 1e-9);
        assert!((p[3][0] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let spans = vec![span(0, 0, 125)]; // half of the first 250ns bucket
        let p = utilization_profile(&spans, 1, 1000, 4);
        assert!((p[0][0] - 0.5).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn multiple_spans_accumulate() {
        let spans = vec![span(0, 0, 100), span(0, 100, 200), span(1, 0, 250)];
        let p = utilization_profile(&spans, 2, 1000, 4);
        assert!((p[0][0] - 0.8).abs() < 1e-9);
        assert!((p[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_never_exceeds_one() {
        // Overlapping spans (can't happen in real traces, but the
        // renderer must stay sane).
        let spans = vec![span(0, 0, 1000), span(0, 0, 1000)];
        let p = utilization_profile(&spans, 1, 1000, 2);
        assert!(p.iter().all(|row| row[0] <= 1.0));
    }

    #[test]
    fn render_produces_one_line_per_bucket() {
        let spans = vec![span(0, 0, 500_000)];
        let p = utilization_profile(&spans, 2, 1_000_000, 5);
        let s = render_profile(&p, 1_000_000);
        assert_eq!(s.lines().count(), 6); // header + 5 buckets
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_trace_is_all_idle() {
        let p = utilization_profile(&[], 3, 1000, 2);
        assert!(p.iter().all(|row| row.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn non_divisible_end_keeps_full_buckets_at_one() {
        // 1000ns over 3 buckets: width = ceil(1000/3) = 334, so the last
        // bucket covers only [668, 1000) = 332ns. A fully busy PE must
        // still read 100% there (regression: it read 332/334).
        let spans = vec![span(0, 0, 1000)];
        let p = utilization_profile(&spans, 1, 1000, 3);
        for (b, row) in p.iter().enumerate() {
            assert!((row[0] - 1.0).abs() < 1e-9, "bucket {b}: {row:?}");
        }
    }

    #[test]
    fn non_divisible_partial_tail_is_fractional_of_actual_width() {
        // Last bucket is [668, 1000); busy 668..834 = 166 of 332ns = 50%.
        let spans = vec![span(0, 668, 834)];
        let p = utilization_profile(&spans, 1, 1000, 3);
        assert!((p[0][0] - 0.0).abs() < 1e-9);
        assert!((p[1][0] - 0.0).abs() < 1e-9);
        assert!((p[2][0] - 0.5).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn span_ending_exactly_on_bucket_boundary_stays_in_its_bucket() {
        // Busy 0..250 of 1000 over 4 buckets: exactly fills bucket 0 and
        // must not leak into bucket 1.
        let spans = vec![span(0, 0, 250)];
        let p = utilization_profile(&spans, 1, 1000, 4);
        assert!((p[0][0] - 1.0).abs() < 1e-9);
        assert!((p[1][0] - 0.0).abs() < 1e-9);
        // And a span *starting* exactly on a boundary stays out of the
        // earlier bucket.
        let spans = vec![span(0, 250, 500)];
        let p = utilization_profile(&spans, 1, 1000, 4);
        assert!((p[0][0] - 0.0).abs() < 1e-9);
        assert!((p[1][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_with_zero_pes_reports_idle_not_full() {
        // Regression: the min fold used to seed at 1.0, so an empty row
        // (zero PEs) rendered as min=100%.
        let p = utilization_profile(&[], 0, 1000, 2);
        let s = render_profile(&p, 1000);
        for line in s.lines().skip(1) {
            assert!(line.contains("0%"), "{line}");
            assert!(!line.contains("100%"), "{line}");
        }
    }
}
