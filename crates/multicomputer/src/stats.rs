//! Run statistics: per-node counters and machine-level summaries.
//!
//! The paper's tables report chares created, messages processed, and
//! processor utilization; these types carry those numbers from the node
//! programs out through the machine's run report.

use crate::time::Cost;

/// Named counters reported by one node at the end of a run.
///
/// A flat name/value list keeps the machine layer independent of what the
/// runtime above counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// `(name, value)` pairs; names should be stable identifiers like
    /// `"msgs_processed"`.
    pub counters: Vec<(&'static str, u64)>,
}

impl NodeStats {
    /// A new empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` under `name` (appends; use once per name).
    pub fn push(&mut self, name: &'static str, value: u64) {
        self.counters.push((name, value));
    }

    /// Look up a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Aggregate of the same counter across all nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatSummary {
    /// Sum over all nodes.
    pub total: u64,
    /// Largest per-node value.
    pub max: u64,
    /// Smallest per-node value.
    pub min: u64,
}

/// Summarize counter `name` across per-node stats. Nodes missing the
/// counter contribute 0.
pub fn summarize(nodes: &[NodeStats], name: &str) -> StatSummary {
    let mut total = 0u64;
    let mut max = 0u64;
    let mut min = u64::MAX;
    for n in nodes {
        let v = n.get(name).unwrap_or(0);
        total += v;
        max = max.max(v);
        min = min.min(v);
    }
    if nodes.is_empty() {
        min = 0;
    }
    StatSummary { total, max, min }
}

/// One load-sampling instant, folded online.
///
/// The simulator used to retain a `Vec<usize>` of per-PE backlogs per
/// sample — O(samples × PEs) memory that ROADMAP item 1 (4096-PE
/// scale-up) cannot afford. This accumulator ingests the per-PE
/// backlogs of one sampling instant as a stream and keeps only the
/// aggregates the tables actually report: max, mean (via sum), idle-PE
/// count, and the last value seen.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BacklogSummary {
    /// Sample timestamp in nanoseconds.
    pub at_ns: u64,
    /// Number of PEs folded in.
    pub npes: usize,
    /// Largest per-PE backlog.
    pub max: usize,
    /// Sum of per-PE backlogs (mean = `total / npes`).
    pub total: usize,
    /// PEs with an empty backlog.
    pub idle: usize,
    /// Backlog of the last PE folded (PE npes-1 in sampling order).
    pub last: usize,
}

impl BacklogSummary {
    /// Start a summary for the sampling instant `at_ns`.
    pub fn at(at_ns: u64) -> Self {
        Self { at_ns, ..Self::default() }
    }

    /// Fold one PE's backlog in.
    pub fn push(&mut self, backlog: usize) {
        self.npes += 1;
        self.total += backlog;
        self.max = self.max.max(backlog);
        if backlog == 0 {
            self.idle += 1;
        }
        self.last = backlog;
    }

    /// Mean backlog per PE (0.0 when nothing was folded).
    pub fn mean(&self) -> f64 {
        if self.npes == 0 {
            0.0
        } else {
            self.total as f64 / self.npes as f64
        }
    }
}

/// Load imbalance of per-PE busy times: `max / mean`. 1.0 is perfectly
/// balanced; the paper's load-balancing tables report exactly this ratio.
/// Returns 1.0 for degenerate inputs (no PEs or an all-idle run).
pub fn imbalance(busy: &[Cost]) -> f64 {
    if busy.is_empty() {
        return 1.0;
    }
    let total: u64 = busy.iter().map(|c| c.as_nanos()).sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / busy.len() as f64;
    let max = busy.iter().map(|c| c.as_nanos()).max().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut s = NodeStats::new();
        s.push("msgs", 10);
        s.push("chares", 3);
        assert_eq!(s.get("msgs"), Some(10));
        assert_eq!(s.get("chares"), Some(3));
        assert_eq!(s.get("absent"), None);
    }

    #[test]
    fn summarize_across_nodes() {
        let mut a = NodeStats::new();
        a.push("msgs", 5);
        let mut b = NodeStats::new();
        b.push("msgs", 15);
        let c = NodeStats::new(); // missing counter counts as 0
        let s = summarize(&[a, b, c], "msgs");
        assert_eq!(s.total, 20);
        assert_eq!(s.max, 15);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[], "msgs");
        assert_eq!(s, StatSummary { total: 0, max: 0, min: 0 });
    }

    #[test]
    fn backlog_summary_matches_flat_aggregates() {
        let flat = [3usize, 0, 7, 2];
        let mut s = BacklogSummary::at(1_000);
        for &b in &flat {
            s.push(b);
        }
        assert_eq!(s.npes, 4);
        assert_eq!(s.max, 7);
        assert_eq!(s.total, 12);
        assert_eq!(s.idle, 1);
        assert_eq!(s.last, 2);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn backlog_summary_empty_mean_is_zero() {
        assert_eq!(BacklogSummary::at(5).mean(), 0.0);
    }

    #[test]
    fn imbalance_balanced_is_one() {
        let busy = vec![Cost(100); 8];
        assert!((imbalance(&busy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_hot_spot() {
        // One PE did all the work on a 4-PE machine: max/mean = 4.
        let busy = vec![Cost(400), Cost(0), Cost(0), Cost(0)];
        assert!((imbalance(&busy) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_degenerate_inputs() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[Cost(0), Cost(0)]), 1.0);
    }
}
