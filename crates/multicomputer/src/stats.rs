//! Run statistics: per-node counters and machine-level summaries.
//!
//! The paper's tables report chares created, messages processed, and
//! processor utilization; these types carry those numbers from the node
//! programs out through the machine's run report.

use crate::time::Cost;

/// Named counters reported by one node at the end of a run.
///
/// A flat name/value list keeps the machine layer independent of what the
/// runtime above counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// `(name, value)` pairs; names should be stable identifiers like
    /// `"msgs_processed"`.
    pub counters: Vec<(&'static str, u64)>,
}

impl NodeStats {
    /// A new empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` under `name` (appends; use once per name).
    pub fn push(&mut self, name: &'static str, value: u64) {
        self.counters.push((name, value));
    }

    /// Look up a counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Aggregate of the same counter across all nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatSummary {
    /// Sum over all nodes.
    pub total: u64,
    /// Largest per-node value.
    pub max: u64,
    /// Smallest per-node value.
    pub min: u64,
}

/// Summarize counter `name` across per-node stats. Nodes missing the
/// counter contribute 0.
pub fn summarize(nodes: &[NodeStats], name: &str) -> StatSummary {
    let mut total = 0u64;
    let mut max = 0u64;
    let mut min = u64::MAX;
    for n in nodes {
        let v = n.get(name).unwrap_or(0);
        total += v;
        max = max.max(v);
        min = min.min(v);
    }
    if nodes.is_empty() {
        min = 0;
    }
    StatSummary { total, max, min }
}

/// Load imbalance of per-PE busy times: `max / mean`. 1.0 is perfectly
/// balanced; the paper's load-balancing tables report exactly this ratio.
/// Returns 1.0 for degenerate inputs (no PEs or an all-idle run).
pub fn imbalance(busy: &[Cost]) -> f64 {
    if busy.is_empty() {
        return 1.0;
    }
    let total: u64 = busy.iter().map(|c| c.as_nanos()).sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / busy.len() as f64;
    let max = busy.iter().map(|c| c.as_nanos()).max().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut s = NodeStats::new();
        s.push("msgs", 10);
        s.push("chares", 3);
        assert_eq!(s.get("msgs"), Some(10));
        assert_eq!(s.get("chares"), Some(3));
        assert_eq!(s.get("absent"), None);
    }

    #[test]
    fn summarize_across_nodes() {
        let mut a = NodeStats::new();
        a.push("msgs", 5);
        let mut b = NodeStats::new();
        b.push("msgs", 15);
        let c = NodeStats::new(); // missing counter counts as 0
        let s = summarize(&[a, b, c], "msgs");
        assert_eq!(s.total, 20);
        assert_eq!(s.max, 15);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[], "msgs");
        assert_eq!(s, StatSummary { total: 0, max: 0, min: 0 });
    }

    #[test]
    fn imbalance_balanced_is_one() {
        let busy = vec![Cost(100); 8];
        assert!((imbalance(&busy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_hot_spot() {
        // One PE did all the work on a 4-PE machine: max/mean = 4.
        let busy = vec![Cost(400), Cost(0), Cost(0), Cost(0)];
        assert!((imbalance(&busy) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_degenerate_inputs() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[Cost(0), Cost(0)]), 1.0);
    }
}
