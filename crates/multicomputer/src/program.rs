//! The interface between a machine backend and the node program it hosts.
//!
//! A *node program* is the per-PE half of a message-driven runtime (in
//! this repository: one Chare Kernel node). The machine owns the event
//! loop — simulated or real — and drives every node through
//! [`NodeProgram`]; node handlers talk back to the machine through
//! [`NetCtx`]. Keeping this boundary small is what makes the kernel
//! machine-independent, mirroring the paper's portable machine layer.

use std::any::Any;
use std::sync::Arc;

use crate::pe::Pe;
use crate::stats::NodeStats;
use crate::time::Cost;

/// What a scheduling step accomplished — drives how much dispatch
/// overhead the simulator charges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A user-level message was scheduled and executed (full envelope
    /// handling, queue operations, handler dispatch).
    User,
    /// Only lightweight runtime control traffic was processed.
    Control,
}

/// An owned, untyped message body.
///
/// Messages are always *moved* between PEs — never shared — which
/// preserves nonshared-memory semantics even though both backends run in
/// one address space.
pub type Payload = Box<dyn Any + Send>;

/// A wire payload the network may deliver more than once.
///
/// Payloads are normally moved, so a packet can only arrive once. A
/// sender that wraps its payload in `Replayable` instead ships a
/// generator; the machine materializes one copy per delivery (the node
/// program never sees the wrapper). This is what lets the fault layer
/// duplicate packets honestly — duplication is skipped for opaque
/// payloads — and what a retransmitting protocol uses so the same
/// logical message can cross the wire repeatedly.
pub struct Replayable(pub Arc<dyn Fn() -> Payload + Send + Sync>);

impl Replayable {
    /// Wrap a generator closure.
    pub fn wrap(make: impl Fn() -> Payload + Send + Sync + 'static) -> Payload {
        Box::new(Replayable(Arc::new(make)))
    }

    /// Materialize one delivery of `payload`: unwrap a `Replayable` into
    /// a fresh copy, pass anything else through. Machine backends call
    /// this exactly once per delivered packet.
    pub fn materialize(payload: Payload) -> Payload {
        if payload.is::<Replayable>() {
            let r = payload.downcast::<Replayable>().expect("checked is::");
            (r.0)()
        } else {
            payload
        }
    }
}

/// A message in flight between two PEs.
pub struct Packet {
    /// Sending PE.
    pub from: Pe,
    /// Declared size in bytes, used by the network cost model. In-process
    /// payloads are not serialized, so senders declare the size the wire
    /// representation would have.
    pub bytes: u32,
    /// Arrival timestamp in nanoseconds: simulated arrival time on the
    /// simulator, elapsed send time on the thread backend (which has no
    /// arrival instant distinct from delivery). Feeds receive-side
    /// tracing; carries no protocol meaning.
    pub at_ns: u64,
    /// Send timestamp in nanoseconds: when the sending handler handed
    /// the packet to the network. `at_ns - sent_ns` is the end-to-end
    /// delivery latency (including NIC/link queueing); zero on the
    /// thread backend, where send and delivery share a clock reading.
    /// Host-side metadata for metrics, like `at_ns`; carries no
    /// protocol meaning.
    pub sent_ns: u64,
    /// The message body.
    pub payload: Payload,
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("from", &self.from)
            .field("bytes", &self.bytes)
            .field("at_ns", &self.at_ns)
            .finish_non_exhaustive()
    }
}

/// Machine services available to a node while it boots or executes a
/// handler.
///
/// Implemented once per backend ([`crate::sim::SimMachine`] buffers sends
/// and accounts simulated time; [`crate::thread::ThreadMachine`] pushes
/// straight into channels and ignores charges).
pub trait NetCtx {
    /// The PE this node runs on.
    fn me(&self) -> Pe;

    /// Number of PEs in the machine.
    fn num_pes(&self) -> usize;

    /// Current time in nanoseconds — simulated on the simulator, real
    /// elapsed time on the thread backend.
    fn now_ns(&self) -> u64;

    /// Send a message to `to` (which may be `me()`; local messages bypass
    /// the network at a small fixed cost).
    fn send(&mut self, to: Pe, bytes: u32, payload: Payload);

    /// Charge simulated compute time to the currently executing handler.
    /// No-op on the thread backend, where real work takes real time.
    fn charge(&mut self, cost: Cost);

    /// Simulated nanoseconds charged so far by the currently executing
    /// handler. The simulator's clock does not advance *during* a
    /// handler, so online metrics read work done within one handler
    /// from the delta of this value. Backends without charge
    /// accounting (threads) return 0.
    fn charged_ns(&self) -> u64 {
        0
    }

    /// Request machine shutdown (the Chare Kernel's `CkExit`). In-flight
    /// and queued messages may be discarded.
    fn stop(&mut self);

    /// Store the program's result where the caller of `run` can retrieve
    /// it. Later deposits overwrite earlier ones.
    fn deposit(&mut self, result: Payload);

    /// Request that [`NodeProgram::alarm`] be invoked on this node once,
    /// `after` the current handler ends. A later call within the same
    /// handler replaces an earlier one. Protocols with timeouts
    /// (retransmission, failure suspicion) are built on this. Backends
    /// without timer support ignore the request.
    fn set_alarm(&mut self, _after: Cost) {}
}

/// The per-PE half of a message-driven runtime.
///
/// The machine calls [`boot`](NodeProgram::boot) once at startup, then
/// alternates [`incoming`](NodeProgram::incoming) (packet arrived — file
/// it, cheaply) and [`step`](NodeProgram::step) (pick one queued message
/// and run its handler to completion). The split matters on the
/// simulator: arrival and execution are separate timed events, so queueing
/// delay is modeled faithfully.
pub trait NodeProgram: Send {
    /// Called once per node before any message is delivered. Startup
    /// actions (creating the main chare, constructing branch-office
    /// branches) happen here and may already send messages.
    fn boot(&mut self, net: &mut dyn NetCtx);

    /// A packet addressed to this PE has arrived. Must not execute user
    /// handlers — only enqueue.
    fn incoming(&mut self, pkt: Packet);

    /// Execute one scheduling step (at most one user handler, plus any
    /// pending runtime control work). Returns what ran, or `None` if
    /// nothing was available.
    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind>;

    /// Whether a call to `step` would find runnable work.
    fn has_work(&self) -> bool;

    /// A timer requested through [`NetCtx::set_alarm`] has fired. Runs
    /// like a handler: it may send, charge time and set further alarms.
    /// Default: ignore.
    fn alarm(&mut self, _net: &mut dyn NetCtx) {}

    /// Number of queued runnable messages (for load sampling / figures).
    fn backlog(&self) -> usize {
        0
    }

    /// Counters to include in the machine's run report.
    fn stats(&self) -> NodeStats {
        NodeStats::default()
    }
}

/// Builds one node program per PE.
pub trait NodeFactory {
    /// The node program type this factory builds.
    type Node: NodeProgram;

    /// Build the node for `pe` of a machine with `npes` PEs.
    fn build(&self, pe: Pe, npes: usize) -> Self::Node;
}

/// A [`NodeFactory`] from a closure.
pub struct FnFactory<F>(pub F);

impl<N: NodeProgram, F: Fn(Pe, usize) -> N> NodeFactory for FnFactory<F> {
    type Node = N;
    fn build(&self, pe: Pe, npes: usize) -> N {
        (self.0)(pe, npes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl NodeProgram for Dummy {
        fn boot(&mut self, _net: &mut dyn NetCtx) {}
        fn incoming(&mut self, _pkt: Packet) {}
        fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
            None
        }
        fn has_work(&self) -> bool {
            false
        }
    }

    #[test]
    fn fn_factory_builds_per_pe() {
        let f = FnFactory(|_pe, _n| Dummy);
        let node = f.build(Pe(3), 8);
        assert!(!node.has_work());
        assert_eq!(node.backlog(), 0);
        assert!(node.stats().counters.is_empty());
    }

    #[test]
    fn packet_debug_is_printable() {
        let p = Packet {
            from: Pe(1),
            bytes: 64,
            at_ns: 0,
            sent_ns: 0,
            payload: Box::new(42u32),
        };
        let s = format!("{p:?}");
        assert!(s.contains("PE1"));
        assert!(s.contains("64"));
    }
}
