//! Interconnect topologies of the machines the paper evaluated on.
//!
//! The Chare Kernel's nonshared-memory ports ran on an NCUBE/2 (a binary
//! hypercube), an Intel iPSC/2 (hypercube, often programmed as a mesh) and
//! its shared-memory ports on bus-based multiprocessors (Sequent Symmetry,
//! Encore Multimax). [`Topology`] captures the graphs we need for the
//! network cost model: the number of hops between two PEs determines the
//! per-message distance term, and the neighbor sets drive the ACWN load
//! balancing strategy ("adaptive contracting within neighborhood"), which
//! only ever forwards work to direct neighbors.
//!
//! All topologies are defined for any number of PEs: hypercubes round up
//! to the enclosing cube and skip missing corners; meshes use the most
//! square factorization of `P`.

use crate::pe::Pe;

/// An interconnect graph over `P` processing elements.
///
/// Distances are measured in link hops; a PE is at distance 0 from
/// itself. For bus-like machines every pair of distinct PEs is one hop
/// apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Binary hypercube (NCUBE/2-like). PEs are cube corners; two PEs are
    /// neighbors iff their indices differ in exactly one bit. If `P` is
    /// not a power of two the cube is the smallest enclosing one and
    /// missing corners are routed around dimension-by-dimension.
    Hypercube,
    /// 2-D mesh of `rows x cols` with X-Y (dimension-ordered) routing.
    Mesh2D {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Unidirectional-distance ring: neighbors are `i±1 mod P`, distance
    /// is the shorter way around.
    Ring,
    /// Every PE is directly connected to every other (crossbar).
    FullyConnected,
    /// A single shared bus: all PEs one hop apart, but the bus serializes
    /// transfers (the cost model may add contention for this topology).
    Bus,
}

impl Topology {
    /// A 2-D mesh with the most square factorization of `npes`.
    pub fn square_mesh(npes: usize) -> Topology {
        let (rows, cols) = squarest_factors(npes);
        Topology::Mesh2D { rows, cols }
    }

    /// Number of hops a message from `a` to `b` traverses on a machine
    /// with `npes` PEs.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range, or if a `Mesh2D`'s
    /// `rows * cols < npes`.
    pub fn distance(&self, a: Pe, b: Pe, npes: usize) -> u32 {
        assert!(a.index() < npes && b.index() < npes, "PE out of range");
        if a == b {
            return 0;
        }
        match *self {
            Topology::Hypercube => (a.0 ^ b.0).count_ones(),
            Topology::Mesh2D { rows, cols } => {
                assert!(rows * cols >= npes, "mesh smaller than machine");
                let (ar, ac) = (a.index() / cols, a.index() % cols);
                let (br, bc) = (b.index() / cols, b.index() % cols);
                (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
            }
            Topology::Ring => {
                let d = a.index().abs_diff(b.index());
                d.min(npes - d) as u32
            }
            Topology::FullyConnected | Topology::Bus => 1,
        }
    }

    /// Direct neighbors of `pe` on a machine with `npes` PEs, in a
    /// deterministic order.
    ///
    /// For `FullyConnected` and `Bus` this is every other PE; callers that
    /// need a bounded neighborhood (e.g. ACWN) should prefer a sparse
    /// topology.
    pub fn neighbors(&self, pe: Pe, npes: usize) -> Vec<Pe> {
        assert!(pe.index() < npes, "PE out of range");
        match *self {
            Topology::Hypercube => {
                let dims = hypercube_dims(npes);
                (0..dims)
                    .map(|d| pe.0 ^ (1 << d))
                    .filter(|&n| (n as usize) < npes)
                    .map(Pe)
                    .collect()
            }
            Topology::Mesh2D { rows, cols } => {
                assert!(rows * cols >= npes, "mesh smaller than machine");
                let (r, c) = (pe.index() / cols, pe.index() % cols);
                let mut out = Vec::with_capacity(4);
                if r > 0 {
                    out.push((r - 1) * cols + c);
                }
                if r + 1 < rows {
                    out.push((r + 1) * cols + c);
                }
                if c > 0 {
                    out.push(r * cols + c - 1);
                }
                if c + 1 < cols {
                    out.push(r * cols + c + 1);
                }
                out.into_iter().filter(|&i| i < npes).map(Pe::from).collect()
            }
            Topology::Ring => {
                if npes <= 1 {
                    vec![]
                } else if npes == 2 {
                    vec![Pe::from(1 - pe.index())]
                } else {
                    let prev = (pe.index() + npes - 1) % npes;
                    let next = (pe.index() + 1) % npes;
                    vec![Pe::from(prev), Pe::from(next)]
                }
            }
            Topology::FullyConnected | Topology::Bus => {
                Pe::all(npes).filter(|&p| p != pe).collect()
            }
        }
    }

    /// The maximum distance between any two PEs (network diameter).
    pub fn diameter(&self, npes: usize) -> u32 {
        if npes <= 1 {
            return 0;
        }
        match *self {
            Topology::Hypercube => hypercube_dims(npes),
            Topology::Mesh2D { rows, cols } => {
                assert!(rows * cols >= npes, "mesh smaller than machine");
                // Conservative: full-mesh diameter (unused corners can
                // only shrink it, never grow it).
                (rows - 1 + cols - 1) as u32
            }
            Topology::Ring => (npes / 2) as u32,
            Topology::FullyConnected | Topology::Bus => 1,
        }
    }

    /// Whether the interconnect serializes all transfers through one
    /// shared medium (the Sequent/Multimax bus).
    pub fn is_shared_medium(&self) -> bool {
        matches!(self, Topology::Bus)
    }
}

/// Number of dimensions of the smallest hypercube containing `npes`
/// corners.
pub fn hypercube_dims(npes: usize) -> u32 {
    if npes <= 1 {
        0
    } else {
        (npes - 1).ilog2() + 1
    }
}

/// Most square `(rows, cols)` factorization with `rows * cols >= n` and
/// `rows <= cols`, preferring exact factorizations.
pub fn squarest_factors(n: usize) -> (usize, usize) {
    if n == 0 {
        return (0, 0);
    }
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_pairs(npes: usize) -> impl Iterator<Item = (Pe, Pe)> {
        (0..npes).flat_map(move |a| (0..npes).map(move |b| (Pe::from(a), Pe::from(b))))
    }

    #[test]
    fn hypercube_distance_is_hamming() {
        let t = Topology::Hypercube;
        assert_eq!(t.distance(Pe(0), Pe(7), 8), 3);
        assert_eq!(t.distance(Pe(5), Pe(6), 8), 2);
        assert_eq!(t.distance(Pe(3), Pe(3), 8), 0);
    }

    #[test]
    fn hypercube_neighbors_differ_one_bit() {
        let t = Topology::Hypercube;
        for pe in Pe::all(16) {
            for n in t.neighbors(pe, 16) {
                assert_eq!((pe.0 ^ n.0).count_ones(), 1);
            }
        }
    }

    #[test]
    fn hypercube_non_power_of_two_skips_missing_corners() {
        let t = Topology::Hypercube;
        // 6 PEs live in an 8-corner cube; PE 3's cube neighbors are
        // 2, 1, 7 but 7 doesn't exist.
        let n = t.neighbors(Pe(3), 6);
        assert_eq!(n, vec![Pe(2), Pe(1)]);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::Mesh2D { rows: 4, cols: 4 };
        assert_eq!(t.distance(Pe(0), Pe(15), 16), 6);
        assert_eq!(t.distance(Pe(5), Pe(6), 16), 1);
        assert_eq!(t.distance(Pe(1), Pe(13), 16), 3);
    }

    #[test]
    fn mesh_corner_has_two_neighbors() {
        let t = Topology::Mesh2D { rows: 3, cols: 3 };
        assert_eq!(t.neighbors(Pe(0), 9).len(), 2);
        assert_eq!(t.neighbors(Pe(4), 9).len(), 4); // center
        assert_eq!(t.neighbors(Pe(1), 9).len(), 3); // edge
    }

    #[test]
    fn ring_distance_wraps() {
        let t = Topology::Ring;
        assert_eq!(t.distance(Pe(0), Pe(7), 8), 1);
        assert_eq!(t.distance(Pe(0), Pe(4), 8), 4);
        assert_eq!(t.distance(Pe(1), Pe(6), 8), 3);
    }

    #[test]
    fn ring_two_pes_single_neighbor() {
        let t = Topology::Ring;
        assert_eq!(t.neighbors(Pe(0), 2), vec![Pe(1)]);
        assert_eq!(t.neighbors(Pe(1), 2), vec![Pe(0)]);
    }

    #[test]
    fn full_and_bus_distance_one() {
        for t in [Topology::FullyConnected, Topology::Bus] {
            for (a, b) in all_pairs(5) {
                let d = t.distance(a, b, 5);
                assert_eq!(d, u32::from(a != b));
            }
        }
    }

    #[test]
    fn distances_symmetric_on_all_topologies() {
        for t in [
            Topology::Hypercube,
            Topology::Mesh2D { rows: 3, cols: 4 },
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Bus,
        ] {
            for (a, b) in all_pairs(12) {
                assert_eq!(t.distance(a, b, 12), t.distance(b, a, 12), "{t:?}");
            }
        }
    }

    #[test]
    fn neighbors_are_at_distance_one() {
        for t in [
            Topology::Hypercube,
            Topology::Mesh2D { rows: 3, cols: 4 },
            Topology::Ring,
            Topology::FullyConnected,
        ] {
            for pe in Pe::all(12) {
                for n in t.neighbors(pe, 12) {
                    assert_eq!(t.distance(pe, n, 12), 1, "{t:?} {pe:?}->{n:?}");
                }
            }
        }
    }

    #[test]
    fn diameter_bounds_distances() {
        for t in [
            Topology::Hypercube,
            Topology::Mesh2D { rows: 4, cols: 4 },
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Bus,
        ] {
            let d = t.diameter(16);
            for (a, b) in all_pairs(16) {
                assert!(t.distance(a, b, 16) <= d, "{t:?}");
            }
        }
    }

    #[test]
    fn hypercube_dims_examples() {
        assert_eq!(hypercube_dims(1), 0);
        assert_eq!(hypercube_dims(2), 1);
        assert_eq!(hypercube_dims(8), 3);
        assert_eq!(hypercube_dims(9), 4);
        assert_eq!(hypercube_dims(256), 8);
    }

    #[test]
    fn squarest_factors_examples() {
        assert_eq!(squarest_factors(16), (4, 4));
        assert_eq!(squarest_factors(12), (3, 4));
        assert_eq!(squarest_factors(7), (1, 7));
        assert_eq!(squarest_factors(1), (1, 1));
    }

    #[test]
    fn square_mesh_covers_all_pes() {
        for n in 1..40 {
            let t = Topology::square_mesh(n);
            if let Topology::Mesh2D { rows, cols } = t {
                assert!(rows * cols >= n);
            } else {
                panic!("not a mesh");
            }
        }
    }

    #[test]
    fn bus_is_shared_medium() {
        assert!(Topology::Bus.is_shared_medium());
        assert!(!Topology::Hypercube.is_shared_medium());
    }
}
