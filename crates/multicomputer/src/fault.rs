//! Deterministic fault injection for the simulated multicomputer.
//!
//! The 1991 Chare Kernel machines (NCUBE/2, iPSC/2) had unreliable
//! interconnects papered over by the vendor's message layer. This module
//! lets the simulator play that adversary on purpose: a [`FaultPlan`]
//! describes per-link message drop / duplication / extra delay, timed
//! link outage windows, and per-PE stalls or crashes, all driven by one
//! seed so a failing run replays exactly. With no plan installed the
//! simulator takes a `None` fast path and produces byte-identical
//! reports to a build without this module — fault injection is zero-cost
//! when off.
//!
//! Faults act at the *network* layer: the node program (and the Chare
//! Kernel's reliable-delivery protocol built on it) sees only the
//! consequences — missing, repeated or late packets, and silent peers.

use crate::pe::Pe;
use crate::time::{Cost, SimTime};

/// Deterministic pseudo-random source for fault decisions.
///
/// xoshiro256** seeded via SplitMix64 — self-contained so the simulator
/// stays free of external dependencies. All fault decisions for a run
/// are a pure function of ([`FaultPlan::seed`], packet routing order),
/// which the discrete-event simulator fixes, so a seed replays exactly.
#[derive(Clone, Debug)]
pub struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    /// An rng whose whole stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into four non-zero words.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        FaultRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// True with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so enabling a fault class does not
            // shift the decisions of the others.
            self.next_u64();
            return false;
        }
        if p >= 1.0 {
            self.next_u64();
            return true;
        }
        // Map the top 53 bits to [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            self.next_u64();
            return 0;
        }
        // Widening-multiply range reduction (bias negligible at u64 width).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A window during which one directed link delivers nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkOutage {
    /// Sending PE.
    pub from: Pe,
    /// Receiving PE.
    pub to: Pe,
    /// First instant of the outage (inclusive).
    pub start: SimTime,
    /// End of the outage (exclusive).
    pub end: SimTime,
}

impl LinkOutage {
    fn covers(&self, from: Pe, to: Pe, now: SimTime) -> bool {
        self.from == from && self.to == to && self.start <= now && now < self.end
    }
}

/// What happens to a PE at its scheduled fault time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeFault {
    /// The PE freezes — executes nothing, acks nothing — until the given
    /// time, then resumes with its queues intact. Models a transient
    /// hang (page fault storm, OS preemption) the kernel must ride out.
    Stall {
        /// The stalled PE.
        pe: Pe,
        /// When the stall begins.
        at: SimTime,
        /// When the PE resumes (exclusive).
        until: SimTime,
    },
    /// The PE halts permanently; packets addressed to it after this
    /// instant are black-holed.
    Crash {
        /// The crashed PE.
        pe: Pe,
        /// When the crash occurs.
        at: SimTime,
    },
}

/// A seeded, fully deterministic description of every fault a simulated
/// run will experience.
///
/// Probabilities apply per routed packet, evaluated in a fixed order
/// (drop, duplicate, delay) so runs replay from [`seed`](FaultPlan::seed)
/// alone. Scheduled faults ([`outages`](FaultPlan::outages),
/// [`pe_faults`](FaultPlan::pe_faults)) fire at their sim times
/// regardless of the seed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probability a packet is silently dropped in flight.
    pub drop_prob: f64,
    /// Probability a delivered packet arrives twice.
    pub dup_prob: f64,
    /// Probability a delivered packet is held back by an extra delay
    /// uniform in `[1, max_extra_delay]`.
    pub delay_prob: f64,
    /// Upper bound on the extra delay (ns).
    pub max_extra_delay: Cost,
    /// Timed windows during which a directed link drops everything.
    pub outages: Vec<LinkOutage>,
    /// Scheduled per-PE stalls and crashes.
    pub pe_faults: Vec<PeFault>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_extra_delay: Cost(0),
            outages: Vec::new(),
            pe_faults: Vec::new(),
        }
    }

    /// Drop each packet with probability `p`.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Duplicate each delivered packet with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Delay each delivered packet with probability `p` by an extra
    /// uniform `[1, max]` ns.
    pub fn delay(mut self, p: f64, max: Cost) -> Self {
        self.delay_prob = p;
        self.max_extra_delay = max;
        self
    }

    /// Black out the directed link `from → to` over `[start, end)`.
    pub fn outage(mut self, from: Pe, to: Pe, start: SimTime, end: SimTime) -> Self {
        self.outages.push(LinkOutage {
            from,
            to,
            start,
            end,
        });
        self
    }

    /// Stall `pe` over `[at, until)`.
    pub fn stall(mut self, pe: Pe, at: SimTime, until: SimTime) -> Self {
        self.pe_faults.push(PeFault::Stall { pe, at, until });
        self
    }

    /// Crash `pe` at `at`, permanently.
    pub fn crash(mut self, pe: Pe, at: SimTime) -> Self {
        self.pe_faults.push(PeFault::Crash { pe, at });
        self
    }

    /// True if no fault of any kind can fire.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.outages.is_empty()
            && self.pe_faults.is_empty()
    }

    /// The fault classes this plan can actually fire, in canonical
    /// order. The unit a minimizer bisects over.
    pub fn classes(&self) -> Vec<FaultClass> {
        let mut out = Vec::new();
        if self.drop_prob > 0.0 {
            out.push(FaultClass::Drop);
        }
        if self.dup_prob > 0.0 {
            out.push(FaultClass::Dup);
        }
        if self.delay_prob > 0.0 {
            out.push(FaultClass::Delay);
        }
        if !self.outages.is_empty() {
            out.push(FaultClass::Outage);
        }
        if self.pe_faults.iter().any(|f| matches!(f, PeFault::Stall { .. })) {
            out.push(FaultClass::Stall);
        }
        if self.pe_faults.iter().any(|f| matches!(f, PeFault::Crash { .. })) {
            out.push(FaultClass::Crash);
        }
        out
    }

    /// A copy of this plan with one fault class removed entirely.
    ///
    /// The seed and every other class are untouched, so each probe run
    /// a minimizer makes stays a deterministic function of the reduced
    /// plan alone. The probabilistic classes share one decision stream;
    /// a disabled class still consumes its per-packet draw (see
    /// [`FaultRng::chance`] at p = 0), but classes that early-out
    /// (drop) or draw extra words (delay magnitude) shift the stream
    /// for later packets — so probes are individually replayable, not
    /// pointwise comparable to the original run.
    pub fn without(&self, class: FaultClass) -> FaultPlan {
        let mut p = self.clone();
        match class {
            FaultClass::Drop => p.drop_prob = 0.0,
            FaultClass::Dup => p.dup_prob = 0.0,
            FaultClass::Delay => {
                p.delay_prob = 0.0;
                p.max_extra_delay = Cost(0);
            }
            FaultClass::Outage => p.outages.clear(),
            FaultClass::Stall => p.pe_faults.retain(|f| !matches!(f, PeFault::Stall { .. })),
            FaultClass::Crash => p.pe_faults.retain(|f| !matches!(f, PeFault::Crash { .. })),
        }
        p
    }

    /// Serialize into the canonical one-line spec, parseable by
    /// [`FaultPlan::parse`]. Probabilities use Rust's shortest-roundtrip
    /// float formatting, so `parse(spec())` reproduces the plan exactly.
    ///
    /// Format (space-separated, classes omitted when inert):
    /// `seed=0x1F drop=0.05 dup=0.02 delay=0.05/200000
    ///  out=0>1@100-200 stall=5@300-1200 crash=3@0`
    pub fn spec(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("seed={:#x}", self.seed);
        if self.drop_prob > 0.0 {
            write!(s, " drop={}", self.drop_prob).unwrap();
        }
        if self.dup_prob > 0.0 {
            write!(s, " dup={}", self.dup_prob).unwrap();
        }
        if self.delay_prob > 0.0 {
            write!(s, " delay={}/{}", self.delay_prob, self.max_extra_delay.0).unwrap();
        }
        for o in &self.outages {
            write!(s, " out={}>{}@{}-{}", o.from.0, o.to.0, o.start.0, o.end.0).unwrap();
        }
        for f in &self.pe_faults {
            match *f {
                PeFault::Stall { pe, at, until } => {
                    write!(s, " stall={}@{}-{}", pe.0, at.0, until.0).unwrap();
                }
                PeFault::Crash { pe, at } => {
                    write!(s, " crash={}@{}", pe.0, at.0).unwrap();
                }
            }
        }
        s
    }

    /// Parse a plan from the spec format produced by
    /// [`FaultPlan::spec`]. Tokens may appear in any order; the `seed=`
    /// token is required (a plan without a seed is not replayable).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn num(s: &str) -> Result<u64, String> {
            if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex '{s}': {e}"))
            } else {
                s.parse().map_err(|e| format!("bad number '{s}': {e}"))
            }
        }
        fn prob(s: &str) -> Result<f64, String> {
            let p: f64 = s.parse().map_err(|e| format!("bad probability '{s}': {e}"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} outside [0, 1]"));
            }
            Ok(p)
        }
        fn span(s: &str) -> Result<(u64, u64), String> {
            let (a, b) = s
                .split_once('-')
                .ok_or_else(|| format!("expected START-END, got '{s}'"))?;
            let (start, end) = (num(a)?, num(b)?);
            if end <= start {
                return Err(format!("empty window '{s}'"));
            }
            Ok((start, end))
        }
        let mut plan = FaultPlan::new(0);
        let mut saw_seed = false;
        for tok in spec.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected KEY=VALUE, got '{tok}'"))?;
            match key {
                "seed" => {
                    plan.seed = num(val)?;
                    saw_seed = true;
                }
                "drop" => plan.drop_prob = prob(val)?,
                "dup" => plan.dup_prob = prob(val)?,
                "delay" => {
                    let (p, max) = val
                        .split_once('/')
                        .ok_or_else(|| format!("expected delay=P/MAX_NS, got '{tok}'"))?;
                    plan.delay_prob = prob(p)?;
                    plan.max_extra_delay = Cost(num(max)?);
                }
                "out" => {
                    let (link, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("expected out=FROM>TO@START-END, got '{tok}'"))?;
                    let (from, to) = link
                        .split_once('>')
                        .ok_or_else(|| format!("expected FROM>TO, got '{link}'"))?;
                    let (start, end) = span(window)?;
                    plan = plan.outage(
                        Pe(num(from)? as u32),
                        Pe(num(to)? as u32),
                        SimTime(start),
                        SimTime(end),
                    );
                }
                "stall" => {
                    let (pe, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("expected stall=PE@START-END, got '{tok}'"))?;
                    let (at, until) = span(window)?;
                    plan = plan.stall(Pe(num(pe)? as u32), SimTime(at), SimTime(until));
                }
                "crash" => {
                    let (pe, at) = val
                        .split_once('@')
                        .ok_or_else(|| format!("expected crash=PE@TIME, got '{tok}'"))?;
                    plan = plan.crash(Pe(num(pe)? as u32), SimTime(num(at)?));
                }
                other => return Err(format!("unknown fault token '{other}'")),
            }
        }
        if !saw_seed {
            return Err("missing required 'seed=' token".into());
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// One bisectable class of faults in a [`FaultPlan`] — the granularity
/// at which a failure minimizer strips a plan down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Probabilistic packet drop.
    Drop,
    /// Probabilistic packet duplication.
    Dup,
    /// Probabilistic extra delivery delay.
    Delay,
    /// Scheduled link outage windows.
    Outage,
    /// Scheduled transient PE stalls.
    Stall,
    /// Scheduled permanent PE crashes.
    Crash,
}

impl FaultClass {
    /// All classes, in the canonical bisection order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Drop,
        FaultClass::Dup,
        FaultClass::Delay,
        FaultClass::Outage,
        FaultClass::Stall,
        FaultClass::Crash,
    ];
}

/// Verdict for one routed packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Silently dropped (probabilistic).
    Drop,
    /// Dropped because the link is in an outage window.
    OutageDrop,
    /// Delivered, possibly late and/or twice.
    Deliver {
        /// Extra latency beyond the cost model.
        extra: Cost,
        /// Deliver a second copy (after the first).
        duplicate: bool,
    },
}

/// Counters of the faults a run actually experienced; reported in
/// `SimReport::faults`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by the random-drop process.
    pub dropped: u64,
    /// Packets lost to link outage windows.
    pub outage_dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Packets held back by extra delay.
    pub delayed: u64,
    /// Packets black-holed at crashed PEs.
    pub crash_dropped: u64,
    /// Execute dispatches deferred because the PE was stalled.
    pub stall_deferrals: u64,
}

impl FaultStats {
    /// Total packets that never reached their program (any cause).
    pub fn total_lost(&self) -> u64 {
        self.dropped + self.outage_dropped + self.crash_dropped
    }
}

/// Live per-run fault state owned by the simulator: the plan, its rng,
/// and the counters.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: FaultRng,
    /// Observed fault counts (simulator updates these as faults fire).
    pub stats: FaultStats,
}

impl FaultState {
    /// Fresh state for a plan; the rng starts from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = FaultRng::new(plan.seed);
        FaultState {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one packet routed `from → to` at `now`,
    /// updating the stats. Outage windows are checked first (no rng
    /// consumed — they are scheduled, not probabilistic), then drop /
    /// duplicate / delay draws in fixed order.
    pub fn judge(&mut self, from: Pe, to: Pe, now: SimTime) -> LinkVerdict {
        if self.plan.outages.iter().any(|o| o.covers(from, to, now)) {
            self.stats.outage_dropped += 1;
            return LinkVerdict::OutageDrop;
        }
        if self.plan.crashed_at(to, now) {
            self.stats.crash_dropped += 1;
            return LinkVerdict::Drop;
        }
        if self.rng.chance(self.plan.drop_prob) {
            self.stats.dropped += 1;
            return LinkVerdict::Drop;
        }
        let duplicate = self.rng.chance(self.plan.dup_prob);
        let delayed = self.rng.chance(self.plan.delay_prob);
        let extra = if delayed && self.plan.max_extra_delay.0 > 0 {
            Cost(1 + self.rng.below(self.plan.max_extra_delay.0))
        } else {
            Cost(0)
        };
        // `duplicated` is counted by the machine when it actually injects
        // the copy — the draw here may be vetoed for opaque payloads.
        if extra.0 > 0 {
            self.stats.delayed += 1;
        }
        LinkVerdict::Deliver { extra, duplicate }
    }

    /// If `pe` is stalled at `now`, the time it resumes.
    pub fn stalled_until(&self, pe: Pe, now: SimTime) -> Option<SimTime> {
        self.plan.pe_faults.iter().find_map(|f| match *f {
            PeFault::Stall { pe: p, at, until } if p == pe && at <= now && now < until => {
                Some(until)
            }
            _ => None,
        })
    }

    /// True if `pe` has crashed at or before `now`.
    pub fn crashed(&self, pe: Pe, now: SimTime) -> bool {
        self.plan.crashed_at(pe, now)
    }
}

impl FaultPlan {
    fn crashed_at(&self, pe: Pe, now: SimTime) -> bool {
        self.pe_faults
            .iter()
            .any(|f| matches!(*f, PeFault::Crash { pe: p, at } if p == pe && at <= now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chance_extremes_consume_draws() {
        let mut a = FaultRng::new(7);
        assert!(!a.chance(0.0));
        assert!(a.chance(1.0));
        let mut b = FaultRng::new(7);
        b.next_u64();
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut rng = FaultRng::new(1);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn below_bounds() {
        let mut rng = FaultRng::new(9);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn judge_replays_from_seed() {
        let plan = FaultPlan::new(0xFA17).drop(0.1).duplicate(0.05).delay(0.2, Cost(500));
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for i in 0..500u64 {
            let from = Pe((i % 4) as u32);
            let to = Pe(((i + 1) % 4) as u32);
            assert_eq!(a.judge(from, to, SimTime(i)), b.judge(from, to, SimTime(i)));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn outage_window_drops_only_inside() {
        let plan =
            FaultPlan::new(0).outage(Pe(0), Pe(1), SimTime(100), SimTime(200));
        let mut st = FaultState::new(plan);
        assert!(matches!(
            st.judge(Pe(0), Pe(1), SimTime(150)),
            LinkVerdict::OutageDrop
        ));
        assert!(matches!(
            st.judge(Pe(0), Pe(1), SimTime(200)),
            LinkVerdict::Deliver { .. }
        ));
        // Reverse direction unaffected.
        assert!(matches!(
            st.judge(Pe(1), Pe(0), SimTime(150)),
            LinkVerdict::Deliver { .. }
        ));
        assert_eq!(st.stats.outage_dropped, 1);
    }

    #[test]
    fn stall_and_crash_queries() {
        let plan = FaultPlan::new(0)
            .stall(Pe(2), SimTime(10), SimTime(20))
            .crash(Pe(3), SimTime(50));
        let st = FaultState::new(plan);
        assert_eq!(st.stalled_until(Pe(2), SimTime(15)), Some(SimTime(20)));
        assert_eq!(st.stalled_until(Pe(2), SimTime(20)), None);
        assert_eq!(st.stalled_until(Pe(1), SimTime(15)), None);
        assert!(!st.crashed(Pe(3), SimTime(49)));
        assert!(st.crashed(Pe(3), SimTime(50)));
        assert!(st.crashed(Pe(3), SimTime(1000)));
    }

    #[test]
    fn crashed_destination_black_holes() {
        let mut st = FaultState::new(FaultPlan::new(0).crash(Pe(1), SimTime(5)));
        assert!(matches!(
            st.judge(Pe(0), Pe(1), SimTime(6)),
            LinkVerdict::Drop
        ));
        assert_eq!(st.stats.crash_dropped, 1);
    }

    #[test]
    fn noop_plan_detected() {
        assert!(FaultPlan::new(1).is_noop());
        assert!(!FaultPlan::new(1).drop(0.01).is_noop());
        assert!(!FaultPlan::new(1).crash(Pe(0), SimTime(0)).is_noop());
    }

    fn full_plan() -> FaultPlan {
        FaultPlan::new(0xBAD_5EED)
            .drop(0.05)
            .duplicate(0.02)
            .delay(0.07, Cost(200_000))
            .outage(Pe(0), Pe(1), SimTime(100), SimTime(200))
            .outage(Pe(2), Pe(3), SimTime(500), SimTime(900))
            .stall(Pe(5), SimTime(300), SimTime(1_200))
            .crash(Pe(3), SimTime(0))
    }

    /// Structural equality for plans (FaultPlan has no PartialEq: the
    /// float probabilities make a blanket derive a footgun elsewhere).
    fn same_plan(a: &FaultPlan, b: &FaultPlan) -> bool {
        a.seed == b.seed
            && a.drop_prob == b.drop_prob
            && a.dup_prob == b.dup_prob
            && a.delay_prob == b.delay_prob
            && a.max_extra_delay == b.max_extra_delay
            && a.outages == b.outages
            && a.pe_faults == b.pe_faults
    }

    #[test]
    fn spec_roundtrips_exactly() {
        let plan = full_plan();
        let parsed = FaultPlan::parse(&plan.spec()).expect("own spec must parse");
        assert!(same_plan(&plan, &parsed), "{} != {}", plan, parsed);
        // An awkward float must survive the round trip bit-for-bit.
        let odd = FaultPlan::new(7).drop(0.1234567890123 / 3.0);
        let parsed = FaultPlan::parse(&odd.spec()).unwrap();
        assert_eq!(odd.drop_prob.to_bits(), parsed.drop_prob.to_bits());
        // Noop plan: just the seed.
        assert_eq!(FaultPlan::new(0x1F).spec(), "seed=0x1f");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",                          // no seed
            "drop=0.1",                  // no seed either
            "seed=1 drop=1.5",           // probability out of range
            "seed=1 delay=0.1",          // missing /MAX
            "seed=1 out=0>1@200-100",    // empty window
            "seed=1 stall=2@50-50",      // empty window
            "seed=1 flood=0.5",          // unknown class
            "seed=1 crash=3",            // missing @TIME
            "seed=zz",                   // bad number
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: '{bad}'");
        }
    }

    #[test]
    fn classes_and_without_cover_every_class() {
        let plan = full_plan();
        assert_eq!(
            plan.classes(),
            vec![
                FaultClass::Drop,
                FaultClass::Dup,
                FaultClass::Delay,
                FaultClass::Outage,
                FaultClass::Stall,
                FaultClass::Crash,
            ]
        );
        for class in FaultClass::ALL {
            let reduced = plan.without(class);
            assert!(
                !reduced.classes().contains(&class),
                "{class:?} survived removal"
            );
            assert_eq!(reduced.classes().len(), plan.classes().len() - 1);
            assert_eq!(reduced.seed, plan.seed, "removal must not reseed");
        }
        // Removing every class yields a noop plan (minimizer endpoint).
        let mut bare = plan;
        for class in FaultClass::ALL {
            bare = bare.without(class);
        }
        assert!(bare.is_noop());
    }

    #[test]
    fn without_dup_preserves_the_decision_stream() {
        // The duplication class consumes exactly one draw per delivered
        // packet whether enabled or not, so removing it must leave every
        // drop and delay decision on the same packets.
        let plan = FaultPlan::new(42).drop(0.3).duplicate(0.2).delay(0.2, Cost(100));
        let mut full = FaultState::new(plan.clone());
        let mut nodup = FaultState::new(plan.without(FaultClass::Dup));
        for i in 0..2_000u64 {
            let full_v = full.judge(Pe(0), Pe(1), SimTime(i));
            let nodup_v = nodup.judge(Pe(0), Pe(1), SimTime(i));
            match (full_v, nodup_v) {
                (LinkVerdict::Drop, LinkVerdict::Drop) => {}
                (
                    LinkVerdict::Deliver { extra: a, duplicate: _ },
                    LinkVerdict::Deliver { extra: b, duplicate: dup },
                ) => {
                    assert_eq!(a, b, "packet {i}: delay decision shifted");
                    assert!(!dup, "packet {i}: removed class fired");
                }
                (a, b) => panic!("packet {i}: drop decision shifted ({a:?} vs {b:?})"),
            }
        }
        assert_eq!(full.stats.dropped, nodup.stats.dropped);
        assert_eq!(full.stats.delayed, nodup.stats.delayed);
    }
}
