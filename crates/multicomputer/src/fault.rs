//! Deterministic fault injection for the simulated multicomputer.
//!
//! The 1991 Chare Kernel machines (NCUBE/2, iPSC/2) had unreliable
//! interconnects papered over by the vendor's message layer. This module
//! lets the simulator play that adversary on purpose: a [`FaultPlan`]
//! describes per-link message drop / duplication / extra delay, timed
//! link outage windows, and per-PE stalls or crashes, all driven by one
//! seed so a failing run replays exactly. With no plan installed the
//! simulator takes a `None` fast path and produces byte-identical
//! reports to a build without this module — fault injection is zero-cost
//! when off.
//!
//! Faults act at the *network* layer: the node program (and the Chare
//! Kernel's reliable-delivery protocol built on it) sees only the
//! consequences — missing, repeated or late packets, and silent peers.

use crate::pe::Pe;
use crate::time::{Cost, SimTime};

/// Deterministic pseudo-random source for fault decisions.
///
/// xoshiro256** seeded via SplitMix64 — self-contained so the simulator
/// stays free of external dependencies. All fault decisions for a run
/// are a pure function of ([`FaultPlan::seed`], packet routing order),
/// which the discrete-event simulator fixes, so a seed replays exactly.
#[derive(Clone, Debug)]
pub struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    /// An rng whose whole stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into four non-zero words.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        FaultRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// True with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so enabling a fault class does not
            // shift the decisions of the others.
            self.next_u64();
            return false;
        }
        if p >= 1.0 {
            self.next_u64();
            return true;
        }
        // Map the top 53 bits to [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            self.next_u64();
            return 0;
        }
        // Widening-multiply range reduction (bias negligible at u64 width).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A window during which one directed link delivers nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkOutage {
    /// Sending PE.
    pub from: Pe,
    /// Receiving PE.
    pub to: Pe,
    /// First instant of the outage (inclusive).
    pub start: SimTime,
    /// End of the outage (exclusive).
    pub end: SimTime,
}

impl LinkOutage {
    fn covers(&self, from: Pe, to: Pe, now: SimTime) -> bool {
        self.from == from && self.to == to && self.start <= now && now < self.end
    }
}

/// What happens to a PE at its scheduled fault time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeFault {
    /// The PE freezes — executes nothing, acks nothing — until the given
    /// time, then resumes with its queues intact. Models a transient
    /// hang (page fault storm, OS preemption) the kernel must ride out.
    Stall {
        /// The stalled PE.
        pe: Pe,
        /// When the stall begins.
        at: SimTime,
        /// When the PE resumes (exclusive).
        until: SimTime,
    },
    /// The PE halts permanently; packets addressed to it after this
    /// instant are black-holed.
    Crash {
        /// The crashed PE.
        pe: Pe,
        /// When the crash occurs.
        at: SimTime,
    },
}

/// A seeded, fully deterministic description of every fault a simulated
/// run will experience.
///
/// Probabilities apply per routed packet, evaluated in a fixed order
/// (drop, duplicate, delay) so runs replay from [`seed`](FaultPlan::seed)
/// alone. Scheduled faults ([`outages`](FaultPlan::outages),
/// [`pe_faults`](FaultPlan::pe_faults)) fire at their sim times
/// regardless of the seed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions.
    pub seed: u64,
    /// Probability a packet is silently dropped in flight.
    pub drop_prob: f64,
    /// Probability a delivered packet arrives twice.
    pub dup_prob: f64,
    /// Probability a delivered packet is held back by an extra delay
    /// uniform in `[1, max_extra_delay]`.
    pub delay_prob: f64,
    /// Upper bound on the extra delay (ns).
    pub max_extra_delay: Cost,
    /// Timed windows during which a directed link drops everything.
    pub outages: Vec<LinkOutage>,
    /// Scheduled per-PE stalls and crashes.
    pub pe_faults: Vec<PeFault>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_extra_delay: Cost(0),
            outages: Vec::new(),
            pe_faults: Vec::new(),
        }
    }

    /// Drop each packet with probability `p`.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Duplicate each delivered packet with probability `p`.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Delay each delivered packet with probability `p` by an extra
    /// uniform `[1, max]` ns.
    pub fn delay(mut self, p: f64, max: Cost) -> Self {
        self.delay_prob = p;
        self.max_extra_delay = max;
        self
    }

    /// Black out the directed link `from → to` over `[start, end)`.
    pub fn outage(mut self, from: Pe, to: Pe, start: SimTime, end: SimTime) -> Self {
        self.outages.push(LinkOutage {
            from,
            to,
            start,
            end,
        });
        self
    }

    /// Stall `pe` over `[at, until)`.
    pub fn stall(mut self, pe: Pe, at: SimTime, until: SimTime) -> Self {
        self.pe_faults.push(PeFault::Stall { pe, at, until });
        self
    }

    /// Crash `pe` at `at`, permanently.
    pub fn crash(mut self, pe: Pe, at: SimTime) -> Self {
        self.pe_faults.push(PeFault::Crash { pe, at });
        self
    }

    /// True if no fault of any kind can fire.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.delay_prob <= 0.0
            && self.outages.is_empty()
            && self.pe_faults.is_empty()
    }
}

/// Verdict for one routed packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Silently dropped (probabilistic).
    Drop,
    /// Dropped because the link is in an outage window.
    OutageDrop,
    /// Delivered, possibly late and/or twice.
    Deliver {
        /// Extra latency beyond the cost model.
        extra: Cost,
        /// Deliver a second copy (after the first).
        duplicate: bool,
    },
}

/// Counters of the faults a run actually experienced; reported in
/// `SimReport::faults`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets dropped by the random-drop process.
    pub dropped: u64,
    /// Packets lost to link outage windows.
    pub outage_dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Packets held back by extra delay.
    pub delayed: u64,
    /// Packets black-holed at crashed PEs.
    pub crash_dropped: u64,
    /// Execute dispatches deferred because the PE was stalled.
    pub stall_deferrals: u64,
}

impl FaultStats {
    /// Total packets that never reached their program (any cause).
    pub fn total_lost(&self) -> u64 {
        self.dropped + self.outage_dropped + self.crash_dropped
    }
}

/// Live per-run fault state owned by the simulator: the plan, its rng,
/// and the counters.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: FaultRng,
    /// Observed fault counts (simulator updates these as faults fire).
    pub stats: FaultStats,
}

impl FaultState {
    /// Fresh state for a plan; the rng starts from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = FaultRng::new(plan.seed);
        FaultState {
            plan,
            rng,
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of one packet routed `from → to` at `now`,
    /// updating the stats. Outage windows are checked first (no rng
    /// consumed — they are scheduled, not probabilistic), then drop /
    /// duplicate / delay draws in fixed order.
    pub fn judge(&mut self, from: Pe, to: Pe, now: SimTime) -> LinkVerdict {
        if self.plan.outages.iter().any(|o| o.covers(from, to, now)) {
            self.stats.outage_dropped += 1;
            return LinkVerdict::OutageDrop;
        }
        if self.plan.crashed_at(to, now) {
            self.stats.crash_dropped += 1;
            return LinkVerdict::Drop;
        }
        if self.rng.chance(self.plan.drop_prob) {
            self.stats.dropped += 1;
            return LinkVerdict::Drop;
        }
        let duplicate = self.rng.chance(self.plan.dup_prob);
        let delayed = self.rng.chance(self.plan.delay_prob);
        let extra = if delayed && self.plan.max_extra_delay.0 > 0 {
            Cost(1 + self.rng.below(self.plan.max_extra_delay.0))
        } else {
            Cost(0)
        };
        // `duplicated` is counted by the machine when it actually injects
        // the copy — the draw here may be vetoed for opaque payloads.
        if extra.0 > 0 {
            self.stats.delayed += 1;
        }
        LinkVerdict::Deliver { extra, duplicate }
    }

    /// If `pe` is stalled at `now`, the time it resumes.
    pub fn stalled_until(&self, pe: Pe, now: SimTime) -> Option<SimTime> {
        self.plan.pe_faults.iter().find_map(|f| match *f {
            PeFault::Stall { pe: p, at, until } if p == pe && at <= now && now < until => {
                Some(until)
            }
            _ => None,
        })
    }

    /// True if `pe` has crashed at or before `now`.
    pub fn crashed(&self, pe: Pe, now: SimTime) -> bool {
        self.plan.crashed_at(pe, now)
    }
}

impl FaultPlan {
    fn crashed_at(&self, pe: Pe, now: SimTime) -> bool {
        self.pe_faults
            .iter()
            .any(|f| matches!(*f, PeFault::Crash { pe: p, at } if p == pe && at <= now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = FaultRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chance_extremes_consume_draws() {
        let mut a = FaultRng::new(7);
        assert!(!a.chance(0.0));
        assert!(a.chance(1.0));
        let mut b = FaultRng::new(7);
        b.next_u64();
        b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut rng = FaultRng::new(1);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn below_bounds() {
        let mut rng = FaultRng::new(9);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn judge_replays_from_seed() {
        let plan = FaultPlan::new(0xFA17).drop(0.1).duplicate(0.05).delay(0.2, Cost(500));
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for i in 0..500u64 {
            let from = Pe((i % 4) as u32);
            let to = Pe(((i + 1) % 4) as u32);
            assert_eq!(a.judge(from, to, SimTime(i)), b.judge(from, to, SimTime(i)));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn outage_window_drops_only_inside() {
        let plan =
            FaultPlan::new(0).outage(Pe(0), Pe(1), SimTime(100), SimTime(200));
        let mut st = FaultState::new(plan);
        assert!(matches!(
            st.judge(Pe(0), Pe(1), SimTime(150)),
            LinkVerdict::OutageDrop
        ));
        assert!(matches!(
            st.judge(Pe(0), Pe(1), SimTime(200)),
            LinkVerdict::Deliver { .. }
        ));
        // Reverse direction unaffected.
        assert!(matches!(
            st.judge(Pe(1), Pe(0), SimTime(150)),
            LinkVerdict::Deliver { .. }
        ));
        assert_eq!(st.stats.outage_dropped, 1);
    }

    #[test]
    fn stall_and_crash_queries() {
        let plan = FaultPlan::new(0)
            .stall(Pe(2), SimTime(10), SimTime(20))
            .crash(Pe(3), SimTime(50));
        let st = FaultState::new(plan);
        assert_eq!(st.stalled_until(Pe(2), SimTime(15)), Some(SimTime(20)));
        assert_eq!(st.stalled_until(Pe(2), SimTime(20)), None);
        assert_eq!(st.stalled_until(Pe(1), SimTime(15)), None);
        assert!(!st.crashed(Pe(3), SimTime(49)));
        assert!(st.crashed(Pe(3), SimTime(50)));
        assert!(st.crashed(Pe(3), SimTime(1000)));
    }

    #[test]
    fn crashed_destination_black_holes() {
        let mut st = FaultState::new(FaultPlan::new(0).crash(Pe(1), SimTime(5)));
        assert!(matches!(
            st.judge(Pe(0), Pe(1), SimTime(6)),
            LinkVerdict::Drop
        ));
        assert_eq!(st.stats.crash_dropped, 1);
    }

    #[test]
    fn noop_plan_detected() {
        assert!(FaultPlan::new(1).is_noop());
        assert!(!FaultPlan::new(1).drop(0.01).is_noop());
        assert!(!FaultPlan::new(1).crash(Pe(0), SimTime(0)).is_noop());
    }
}
