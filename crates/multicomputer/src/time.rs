//! Simulated time and compute-cost quantities.
//!
//! The simulator measures everything in nanoseconds of *simulated* time.
//! Newtypes keep simulated durations ([`Cost`]) and simulated instants
//! ([`SimTime`]) from being mixed up with real wall-clock values.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since machine boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A duration of simulated compute or network time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(pub u64);

impl SimTime {
    /// Machine boot.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since boot.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since boot, as a float (for reports).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Cost {
    /// A zero-length duration.
    pub const ZERO: Cost = Cost(0);

    /// A duration of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Cost {
        Cost(n)
    }

    /// A duration of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> Cost {
        Cost(n * 1_000)
    }

    /// A duration of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> Cost {
        Cost(n * 1_000_000)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating multiply by a count (e.g. per-byte costs).
    #[inline]
    pub fn times(self, n: u64) -> Cost {
        Cost(self.0.saturating_mul(n))
    }
}

impl Add<Cost> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Cost) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: SimTime) -> Cost {
        Cost(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        Cost(iter.map(|c| c.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_cost() {
        assert_eq!(SimTime(100) + Cost(50), SimTime(150));
    }

    #[test]
    fn time_difference_saturates() {
        assert_eq!(SimTime(50) - SimTime(100), Cost(0));
        assert_eq!(SimTime(100) - SimTime(40), Cost(60));
    }

    #[test]
    fn cost_units() {
        assert_eq!(Cost::micros(3), Cost(3_000));
        assert_eq!(Cost::millis(2), Cost(2_000_000));
        assert_eq!(Cost::nanos(7).as_nanos(), 7);
    }

    #[test]
    fn cost_times_saturates() {
        assert_eq!(Cost(u64::MAX).times(2), Cost(u64::MAX));
        assert_eq!(Cost(10).times(5), Cost(50));
    }

    #[test]
    fn cost_sum() {
        let total: Cost = [Cost(1), Cost(2), Cost(3)].into_iter().sum();
        assert_eq!(total, Cost(6));
    }

    #[test]
    fn simtime_max() {
        assert_eq!(SimTime(5).max(SimTime(9)), SimTime(9));
        assert_eq!(SimTime(9).max(SimTime(5)), SimTime(9));
    }

    #[test]
    fn seconds_conversion() {
        assert!((SimTime(1_500_000_000).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
