//! Network and scheduling cost model for the simulated multicomputer.
//!
//! The classic model for 1991-era message passing is an affine cost per
//! message: a fixed software/launch overhead `alpha`, a per-byte
//! transmission cost `beta`, and a per-hop switching cost `gamma` (these
//! machines used store-and-forward or early wormhole routing, so distance
//! mattered). We use
//!
//! ```text
//! latency(bytes, hops) = alpha + bytes * beta + hops * gamma
//! ```
//!
//! plus a small `local` cost for messages a PE sends to itself (the Chare
//! Kernel short-circuited those through the local queue) and a `dispatch`
//! cost charged per scheduled message to model the kernel's
//! pick-and-dispatch overhead.
//!
//! [`MachinePreset`] provides parameters roughly in proportion to the
//! paper's machines. Absolute values are not the point — the experiments
//! reproduce *relative* behavior (speedup shapes, strategy rankings) — but
//! the ratios between software overhead and per-byte cost match the
//! published characteristics of those interconnects (hundreds of
//! microseconds of software overhead, ~1–3 MB/s links).

use crate::time::Cost;
use crate::topology::Topology;

/// Affine per-message network cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed per-message software overhead (both endpoints combined).
    pub alpha: Cost,
    /// Per-byte transmission cost.
    pub beta: Cost,
    /// Per-hop switching cost.
    pub gamma: Cost,
    /// Delivery cost of a PE-local message.
    pub local: Cost,
    /// Scheduler pick-and-dispatch overhead charged per executed user
    /// message.
    pub dispatch: Cost,
    /// Overhead of a step that only processed lightweight runtime
    /// control traffic (load reports, detection waves, work tokens).
    pub ctl_dispatch: Cost,
}

impl CostModel {
    /// End-to-end latency of a `bytes`-byte message crossing `hops` links.
    ///
    /// `hops == 0` means a PE-local message, which costs only
    /// [`CostModel::local`].
    pub fn latency(&self, bytes: u32, hops: u32) -> Cost {
        if hops == 0 {
            return self.local;
        }
        self.alpha + self.beta.times(bytes as u64) + self.gamma.times(hops as u64)
    }

    /// Time the sender's network interface is occupied injecting the
    /// message (serializes back-to-back sends from one PE).
    pub fn injection(&self, bytes: u32, hops: u32) -> Cost {
        if hops == 0 {
            Cost::ZERO
        } else {
            self.beta.times(bytes as u64)
        }
    }
}

/// Parameter presets approximating the paper's evaluation machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachinePreset {
    /// NCUBE/2-like hypercube: moderate software overhead, slow links,
    /// noticeable per-hop cost (store-and-forward heritage).
    NcubeLike,
    /// Intel iPSC/2-like: higher software overhead, faster links,
    /// small per-hop cost (early wormhole routing).
    IpscLike,
    /// Bus-based shared-memory multiprocessor (Sequent Symmetry-like):
    /// cheap "messages" (shared-memory queue operations).
    SharedBusLike,
    /// An idealized zero-latency machine, useful to isolate algorithmic
    /// speedup limits from communication costs.
    Ideal,
}

impl MachinePreset {
    /// The cost model for this preset.
    pub fn cost_model(self) -> CostModel {
        match self {
            MachinePreset::NcubeLike => CostModel {
                alpha: Cost::micros(150),
                beta: Cost::nanos(570), // ~1.75 MB/s links
                gamma: Cost::micros(35),
                local: Cost::micros(5),
                dispatch: Cost::micros(8),
                ctl_dispatch: Cost::micros(2),
            },
            MachinePreset::IpscLike => CostModel {
                alpha: Cost::micros(350),
                beta: Cost::nanos(360), // ~2.8 MB/s links
                gamma: Cost::micros(10),
                local: Cost::micros(5),
                dispatch: Cost::micros(8),
                ctl_dispatch: Cost::micros(2),
            },
            MachinePreset::SharedBusLike => CostModel {
                alpha: Cost::micros(20),
                beta: Cost::nanos(100),
                gamma: Cost::micros(2),
                local: Cost::micros(3),
                dispatch: Cost::micros(6),
                ctl_dispatch: Cost::nanos(1500),
            },
            MachinePreset::Ideal => CostModel {
                alpha: Cost::ZERO,
                beta: Cost::ZERO,
                gamma: Cost::ZERO,
                local: Cost::ZERO,
                dispatch: Cost::ZERO,
                ctl_dispatch: Cost::ZERO,
            },
        }
    }

    /// The natural topology for this preset.
    pub fn topology(self, npes: usize) -> Topology {
        match self {
            MachinePreset::NcubeLike | MachinePreset::IpscLike => Topology::Hypercube,
            MachinePreset::SharedBusLike => Topology::Bus,
            MachinePreset::Ideal => {
                let _ = npes;
                Topology::FullyConnected
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_affine() {
        let m = CostModel {
            alpha: Cost(100),
            beta: Cost(2),
            gamma: Cost(10),
            local: Cost(1),
            dispatch: Cost(0),
            ctl_dispatch: Cost(0),
        };
        assert_eq!(m.latency(50, 3), Cost(100 + 100 + 30));
        assert_eq!(m.latency(0, 1), Cost(110));
    }

    #[test]
    fn local_messages_bypass_network() {
        let m = MachinePreset::NcubeLike.cost_model();
        assert_eq!(m.latency(1_000_000, 0), m.local);
        assert_eq!(m.injection(1_000_000, 0), Cost::ZERO);
    }

    #[test]
    fn injection_scales_with_bytes() {
        let m = CostModel {
            alpha: Cost(0),
            beta: Cost(3),
            gamma: Cost(0),
            local: Cost(0),
            dispatch: Cost(0),
            ctl_dispatch: Cost(0),
        };
        assert_eq!(m.injection(10, 2), Cost(30));
    }

    #[test]
    fn ideal_machine_is_free() {
        let m = MachinePreset::Ideal.cost_model();
        assert_eq!(m.latency(4096, 5), Cost::ZERO);
        assert_eq!(m.dispatch, Cost::ZERO);
    }

    #[test]
    fn presets_have_distinct_alpha_beta_tradeoffs() {
        let ncube = MachinePreset::NcubeLike.cost_model();
        let ipsc = MachinePreset::IpscLike.cost_model();
        // iPSC: more software overhead, faster wires — the classic
        // published contrast between the two machines.
        assert!(ipsc.alpha > ncube.alpha);
        assert!(ipsc.beta < ncube.beta);
    }

    #[test]
    fn preset_topologies() {
        assert_eq!(MachinePreset::NcubeLike.topology(8), Topology::Hypercube);
        assert_eq!(MachinePreset::SharedBusLike.topology(8), Topology::Bus);
        assert_eq!(MachinePreset::Ideal.topology(8), Topology::FullyConnected);
    }

    #[test]
    fn bigger_messages_cost_more() {
        let m = MachinePreset::IpscLike.cost_model();
        assert!(m.latency(4096, 2) > m.latency(64, 2));
        assert!(m.latency(64, 4) > m.latency(64, 1));
    }
}
