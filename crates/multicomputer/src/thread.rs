//! Real-parallel backend: one OS thread per PE.
//!
//! This is the stand-in for the paper's shared-memory ports (Sequent
//! Symmetry, Encore Multimax): every PE is an OS thread, message
//! transport is a channel per PE, and wall-clock time is the metric. The
//! same [`NodeProgram`] that runs on the simulator runs here unchanged —
//! the machine-independence the paper demonstrates by porting one kernel
//! across machines.
//!
//! Unlike the simulator, the thread machine cannot observe global
//! quiescence for free; programs end by calling [`NetCtx::stop`] (the
//! kernel's `CkExit`, possibly triggered by its quiescence-detection
//! module). A watchdog deadline ([`ThreadConfig::watchdog`]) guards tests
//! and benchmarks against programs that never stop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::pe::Pe;
use crate::program::{NetCtx, NodeFactory, NodeProgram, Packet, Payload, Replayable};
use crate::stats::NodeStats;
use crate::time::Cost;

/// Configuration of the thread-parallel machine.
#[derive(Clone, Debug)]
pub struct ThreadConfig {
    /// Number of PEs (threads).
    pub npes: usize,
    /// Abort the run after this much wall time if the program has not
    /// stopped itself.
    pub watchdog: Duration,
}

impl ThreadConfig {
    /// `npes` threads with a 60-second watchdog.
    pub fn new(npes: usize) -> Self {
        assert!(npes > 0, "machine needs at least one PE");
        ThreadConfig {
            npes,
            watchdog: Duration::from_secs(60),
        }
    }

    /// Override the watchdog deadline.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }
}

/// Result of a thread-machine run.
pub struct ThreadReport {
    /// Wall-clock duration from launch to last thread exit.
    pub wall: Duration,
    /// The last payload a handler deposited, if any.
    pub result: Option<Payload>,
    /// Per-PE counters reported by the nodes.
    pub node_stats: Vec<NodeStats>,
    /// True if the watchdog fired before the program stopped.
    pub timed_out: bool,
}

impl ThreadReport {
    /// Downcast the deposited result.
    pub fn result_as<T: 'static>(&self) -> Option<&T> {
        self.result.as_deref().and_then(|r| r.downcast_ref::<T>())
    }

    /// Take and downcast the deposited result.
    pub fn take_result<T: 'static>(&mut self) -> Option<T> {
        let r = self.result.take()?;
        match r.downcast::<T>() {
            Ok(b) => Some(*b),
            Err(r) => {
                self.result = Some(r);
                None
            }
        }
    }
}

struct Shared {
    stop: AtomicBool,
    result: Mutex<Option<Payload>>,
    start: Instant,
}

struct ThreadCtx {
    me: Pe,
    npes: usize,
    senders: Arc<Vec<Sender<Packet>>>,
    shared: Arc<Shared>,
}

impl NetCtx for ThreadCtx {
    fn me(&self) -> Pe {
        self.me
    }
    fn num_pes(&self) -> usize {
        self.npes
    }
    fn now_ns(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }
    fn send(&mut self, to: Pe, bytes: u32, payload: Payload) {
        assert!(to.index() < self.npes, "send to PE out of range");
        let now = self.now_ns();
        let pkt = Packet {
            from: self.me,
            bytes,
            // No distinct arrival instant on real channels; stamp the
            // send time (delivery follows almost immediately), so
            // metrics see a zero send→deliver latency here.
            at_ns: now,
            sent_ns: now,
            payload,
        };
        // A send after shutdown has begun may find the receiver gone;
        // that is benign (the machine is being torn down).
        let _ = self.senders[to.index()].send(pkt);
    }
    fn charge(&mut self, _cost: Cost) {
        // Real work takes real time on this backend.
    }
    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
    }
    fn deposit(&mut self, result: Payload) {
        *self.shared.result.lock() = Some(result);
    }
}

/// How long an idle PE blocks waiting for a packet before re-checking the
/// stop flag.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Resolve replayable payload generators into concrete payloads before a
/// node sees them (the simulator does the same at arrival time).
fn deliver<N: NodeProgram>(node: &mut N, mut pkt: Packet) {
    pkt.payload = Replayable::materialize(pkt.payload);
    node.incoming(pkt);
}

fn pe_loop<N: NodeProgram>(mut node: N, rx: Receiver<Packet>, mut ctx: ThreadCtx) -> NodeStats {
    node.boot(&mut ctx);
    loop {
        if ctx.shared.stop.load(Ordering::Acquire) {
            break;
        }
        // Drain arrivals first so priorities act on everything available.
        while let Ok(pkt) = rx.try_recv() {
            deliver(&mut node, pkt);
        }
        if node.has_work() {
            let _ = node.step(&mut ctx);
        } else {
            match rx.recv_timeout(IDLE_POLL) {
                Ok(pkt) => deliver(&mut node, pkt),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    node.stats()
}

/// The thread-parallel machine.
pub struct ThreadMachine;

impl ThreadMachine {
    /// Run `factory`'s node program on `cfg.npes` OS threads until a
    /// handler calls [`NetCtx::stop`] or the watchdog fires.
    pub fn run<F>(cfg: ThreadConfig, factory: &F) -> ThreadReport
    where
        F: NodeFactory,
        F::Node: 'static,
    {
        let npes = cfg.npes;
        let mut senders = Vec::with_capacity(npes);
        let mut receivers = Vec::with_capacity(npes);
        for _ in 0..npes {
            let (tx, rx) = unbounded::<Packet>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            result: Mutex::new(None),
            start: Instant::now(),
        });

        let mut handles = Vec::with_capacity(npes);
        for (i, rx) in receivers.into_iter().enumerate() {
            let pe = Pe::from(i);
            let node = factory.build(pe, npes);
            let ctx = ThreadCtx {
                me: pe,
                npes,
                senders: Arc::clone(&senders),
                shared: Arc::clone(&shared),
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pe-{i}"))
                    .spawn(move || pe_loop(node, rx, ctx))
                    .expect("spawn PE thread"),
            );
        }

        // Watchdog: wait for stop, then join. The PE loops poll the flag
        // at IDLE_POLL granularity.
        let mut timed_out = false;
        while !shared.stop.load(Ordering::Acquire) {
            if shared.start.elapsed() > cfg.watchdog {
                shared.stop.store(true, Ordering::Release);
                timed_out = true;
                break;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        let node_stats: Vec<NodeStats> = handles
            .into_iter()
            .map(|h| h.join().expect("PE thread panicked"))
            .collect();
        let wall = shared.start.elapsed();
        let result = shared.result.lock().take();
        ThreadReport {
            wall,
            result,
            node_stats,
            timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FnFactory, StepKind};
    use std::collections::VecDeque;

    /// Token ring: passes a counter around all PEs `laps` times, then
    /// PE 0 deposits and stops — same program as the simulator test,
    /// proving backend-independence at this layer.
    struct Relay {
        pe: Pe,
        npes: usize,
        queue: VecDeque<Packet>,
        laps: u32,
        seen: u64,
    }

    impl NodeProgram for Relay {
        fn boot(&mut self, net: &mut dyn NetCtx) {
            if self.pe == Pe::ZERO {
                net.send(Pe::from(1 % self.npes), 8, Box::new(0u64));
            }
        }
        fn incoming(&mut self, pkt: Packet) {
            self.queue.push_back(pkt);
        }
        fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
            let pkt = self.queue.pop_front()?;
            self.seen += 1;
            let count = *pkt.payload.downcast::<u64>().unwrap();
            if self.pe == Pe::ZERO && count + 1 >= (self.laps as u64) * self.npes as u64 {
                net.deposit(Box::new(count + 1));
                net.stop();
            } else {
                let next = (self.pe.index() + 1) % self.npes;
                net.send(Pe::from(next), 8, Box::new(count + 1));
            }
            Some(StepKind::User)
        }
        fn has_work(&self) -> bool {
            !self.queue.is_empty()
        }
        fn stats(&self) -> NodeStats {
            let mut s = NodeStats::new();
            s.push("seen", self.seen);
            s
        }
    }

    fn relay(laps: u32) -> FnFactory<impl Fn(Pe, usize) -> Relay> {
        FnFactory(move |pe, npes| Relay {
            pe,
            npes,
            queue: VecDeque::new(),
            laps,
            seen: 0,
        })
    }

    #[test]
    fn ring_completes_on_threads() {
        let mut rep = ThreadMachine::run(ThreadConfig::new(4), &relay(3));
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<u64>(), Some(12));
    }

    #[test]
    fn single_pe_machine_works() {
        let mut rep = ThreadMachine::run(ThreadConfig::new(1), &relay(5));
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<u64>(), Some(5));
    }

    #[test]
    fn stats_are_collected_per_pe() {
        let rep = ThreadMachine::run(ThreadConfig::new(4), &relay(2));
        assert_eq!(rep.node_stats.len(), 4);
        let total: u64 = rep
            .node_stats
            .iter()
            .map(|s| s.get("seen").unwrap_or(0))
            .sum();
        assert_eq!(total, 8); // one handler execution per hop: 2 laps * 4 PEs
    }

    #[test]
    fn watchdog_fires_on_nonterminating_program() {
        struct Forever;
        impl NodeProgram for Forever {
            fn boot(&mut self, _net: &mut dyn NetCtx) {}
            fn incoming(&mut self, _pkt: Packet) {}
            fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
                None
            }
            fn has_work(&self) -> bool {
                false
            }
        }
        let cfg = ThreadConfig::new(2).with_watchdog(Duration::from_millis(50));
        let rep = ThreadMachine::run(cfg, &FnFactory(|_, _| Forever));
        assert!(rep.timed_out);
        assert!(rep.result.is_none());
    }

    #[test]
    fn result_downcast_mismatch_is_none() {
        let mut rep = ThreadMachine::run(ThreadConfig::new(2), &relay(1));
        assert!(rep.result_as::<String>().is_none());
        assert_eq!(rep.take_result::<String>(), None);
        // The payload survives a failed take.
        assert_eq!(rep.take_result::<u64>(), Some(2));
    }
}
