//! Deterministic discrete-event simulation of a nonshared-memory
//! multicomputer.
//!
//! This is the substitute for the paper's NCUBE/2 and iPSC/2 testbeds: a
//! sequential event-driven simulator that executes a [`NodeProgram`] on
//! `P` simulated PEs, advancing a virtual clock according to the
//! [`CostModel`] and the compute time handlers charge. Because the event
//! order is a pure function of the configuration and the node programs'
//! behavior, runs are exactly reproducible — the property the experiment
//! tables rely on.
//!
//! ## Timing model
//!
//! * Executing a message costs `dispatch + charged` where `charged` is
//!   whatever the handler accumulated through [`NetCtx::charge`]. A PE
//!   executes one message at a time.
//! * A message of `b` bytes from PE `s` to PE `d` at distance `h` departs
//!   when the handler ends and the sender's network interface is free
//!   (back-to-back sends serialize for `injection(b, h)` each), then
//!   arrives `latency(b, h)` later. Messages between the same ordered PE
//!   pair are never reordered.
//! * On a shared-medium topology ([`Topology::Bus`]) all transfers
//!   additionally serialize through one global bus: each message occupies
//!   the bus for its injection time, modeling Sequent-style bus
//!   contention.
//!
//! The simulation ends when a handler calls [`NetCtx::stop`], or when no
//! events remain and no node has work (global quiescence — reported via
//! [`SimReport::quiesced`]).

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::CostModel;
use crate::fault::{FaultPlan, FaultState, FaultStats, LinkVerdict};
use crate::pe::Pe;
use crate::program::{NetCtx, NodeFactory, NodeProgram, Packet, Payload, Replayable, StepKind};
use crate::trace::TraceSpan;
use crate::stats::{BacklogSummary, NodeStats};
use crate::time::{Cost, SimTime};
use crate::topology::Topology;

/// Configuration of a simulated machine.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processing elements.
    pub npes: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Network / dispatch cost model.
    pub cost: CostModel,
    /// If set, sample every PE's backlog at this simulated interval
    /// (drives the load-evolution figures).
    pub sample_interval: Option<Cost>,
    /// Safety valve: abort after this many events (defaults to
    /// `u64::MAX`).
    pub max_events: u64,
    /// Record one [`TraceSpan`] per executed step (for utilization
    /// profiles — the mini-Projections view).
    pub trace: bool,
    /// Seeded fault plan; `None` (the default) leaves the network
    /// perfect and costs nothing.
    pub fault: Option<FaultPlan>,
}

impl SimConfig {
    /// A machine with `npes` PEs, the given topology and cost model, no
    /// sampling.
    pub fn new(npes: usize, topology: Topology, cost: CostModel) -> Self {
        assert!(npes > 0, "machine needs at least one PE");
        SimConfig {
            npes,
            topology,
            cost,
            sample_interval: None,
            max_events: u64::MAX,
            trace: false,
            fault: None,
        }
    }

    /// Preset-based convenience constructor.
    pub fn preset(npes: usize, preset: crate::cost::MachinePreset) -> Self {
        SimConfig::new(npes, preset.topology(npes), preset.cost_model())
    }

    /// Enable backlog sampling at `interval`.
    pub fn with_sampling(mut self, interval: Cost) -> Self {
        assert!(interval > Cost::ZERO, "sampling interval must be positive");
        self.sample_interval = Some(interval);
        self
    }

    /// Enable execution-span tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Install a fault plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Cap events at `limit`; past it the run ends with
    /// [`AbortReason::MaxEvents`] instead of running forever.
    pub fn with_max_events(mut self, limit: u64) -> Self {
        self.max_events = limit;
        self
    }
}

thread_local! {
    /// Events processed by finished runs on this thread since the last
    /// [`take_events_tally`] — host-perf accounting, outside simulated
    /// semantics.
    static EVENTS_TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Drain this thread's cumulative simulator event count. Benchmarks
/// call it around a batch of runs to report host-side events/sec; runs
/// themselves are unaffected.
pub fn take_events_tally() -> u64 {
    EVENTS_TALLY.with(|c| c.replace(0))
}

/// Why a run ended early without stopping or quiescing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The event count exceeded [`SimConfig::max_events`] — a runaway
    /// program, or one stranded by an unrecovered fault.
    MaxEvents {
        /// The configured limit.
        limit: u64,
    },
}

/// Result of a simulated run.
pub struct SimReport {
    /// Simulated completion time.
    pub end_time: SimTime,
    /// The last payload a handler deposited, if any.
    pub result: Option<Payload>,
    /// Per-PE counters reported by the nodes.
    pub node_stats: Vec<NodeStats>,
    /// Per-PE busy time (dispatch + handler execution).
    pub busy: Vec<Cost>,
    /// Total packets delivered.
    pub packets: u64,
    /// Total bytes carried by delivered packets.
    pub bytes: u64,
    /// Total events processed (stable across identical runs —
    /// the determinism tests compare this).
    pub events: u64,
    /// True if the run ended by global quiescence rather than an explicit
    /// `stop`.
    pub quiesced: bool,
    /// Backlog samples (streaming per-instant aggregates) if sampling
    /// was enabled. O(samples) memory regardless of machine size.
    pub samples: Vec<BacklogSummary>,
    /// Execution spans, if tracing was enabled.
    pub timeline: Vec<TraceSpan>,
    /// Set if the run was cut short by a safety valve rather than ending
    /// by `stop` or quiescence.
    pub aborted: Option<AbortReason>,
    /// Fault counters, present iff a [`FaultPlan`] was installed.
    pub faults: Option<FaultStats>,
}

impl SimReport {
    /// Downcast the deposited result.
    pub fn result_as<T: 'static>(&self) -> Option<&T> {
        self.result.as_deref().and_then(|r| r.downcast_ref::<T>())
    }

    /// Take and downcast the deposited result.
    pub fn take_result<T: 'static>(&mut self) -> Option<T> {
        let r = self.result.take()?;
        match r.downcast::<T>() {
            Ok(b) => Some(*b),
            Err(r) => {
                self.result = Some(r);
                None
            }
        }
    }

    /// Mean PE utilization: busy time / (P * end_time).
    pub fn utilization(&self) -> f64 {
        let span = self.end_time.as_nanos();
        if span == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().map(|c| c.as_nanos()).sum();
        busy as f64 / (span as f64 * self.busy.len() as f64)
    }
}

enum EventKind {
    Arrival { to: Pe, pkt: Packet },
    Execute { pe: Pe },
    Alarm { pe: Pe },
    Sample,
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// `NetCtx` for one handler execution on the simulator: buffers sends,
/// accumulates charged time.
struct SimCtx {
    me: Pe,
    npes: usize,
    now: SimTime,
    charged: Cost,
    outbox: Vec<(Pe, u32, Payload)>,
    stop: bool,
    deposit: Option<Payload>,
    alarm: Option<Cost>,
}

impl SimCtx {
    /// `outbox` is machine-owned scratch: handed in empty (capacity
    /// intact from the previous handler) and handed back after the
    /// sends are routed, so the per-event send buffer is allocated
    /// once per run instead of once per event.
    fn at(me: Pe, npes: usize, now: SimTime, outbox: Vec<(Pe, u32, Payload)>) -> Self {
        debug_assert!(outbox.is_empty());
        SimCtx {
            me,
            npes,
            now,
            charged: Cost::ZERO,
            outbox,
            stop: false,
            deposit: None,
            alarm: None,
        }
    }
}

impl NetCtx for SimCtx {
    fn me(&self) -> Pe {
        self.me
    }
    fn num_pes(&self) -> usize {
        self.npes
    }
    fn now_ns(&self) -> u64 {
        self.now.as_nanos()
    }
    fn send(&mut self, to: Pe, bytes: u32, payload: Payload) {
        assert!(to.index() < self.npes, "send to PE out of range");
        self.outbox.push((to, bytes, payload));
    }
    fn charge(&mut self, cost: Cost) {
        self.charged += cost;
    }
    fn charged_ns(&self) -> u64 {
        self.charged.as_nanos()
    }
    fn stop(&mut self) {
        self.stop = true;
    }
    fn deposit(&mut self, result: Payload) {
        self.deposit = Some(result);
    }
    fn set_alarm(&mut self, after: Cost) {
        self.alarm = Some(after);
    }
}

/// The discrete-event simulated machine.
///
/// Owns the nodes and the event queue; [`SimMachine::run`] drives the
/// simulation to completion and returns a [`SimReport`].
pub struct SimMachine<N: NodeProgram> {
    cfg: SimConfig,
    nodes: Vec<N>,
    heap: BinaryHeap<Reverse<Event>>,
    /// Front slot held out of the heap. Execute events vastly outnumber
    /// everything else and are usually the next event anyway, so the
    /// earliest pending one lives here and the common
    /// schedule-exec-then-pop cycle touches no heap at all.
    /// [`Self::next_event`] compares it against the heap top, keeping
    /// the pop order exactly the total `(time, seq)` order.
    fast: Option<Event>,
    seq: u64,
    /// Reusable send buffer lent to each [`SimCtx`].
    scratch_outbox: Vec<(Pe, u32, Payload)>,
    /// Earliest instant each PE is free to start the next handler.
    busy_until: Vec<SimTime>,
    /// Whether an Execute event is pending for each PE.
    exec_scheduled: Vec<bool>,
    /// Earliest instant each PE's network interface is free.
    nic_free: Vec<SimTime>,
    /// Earliest instant the shared bus is free (Bus topology only).
    bus_free: SimTime,
    busy: Vec<Cost>,
    packets: u64,
    bytes: u64,
    events: u64,
    result: Option<Payload>,
    stopped: bool,
    /// Backlog samples, folded online into per-instant aggregates —
    /// never a per-PE vector, so memory is O(samples) at any scale.
    samples: Vec<BacklogSummary>,
    timeline: Vec<TraceSpan>,
    fault: Option<FaultState>,
    aborted: Option<AbortReason>,
}

impl<N: NodeProgram> SimMachine<N> {
    /// Build the machine, constructing one node per PE from `factory`.
    pub fn new<F: NodeFactory<Node = N>>(cfg: SimConfig, factory: &F) -> Self {
        let npes = cfg.npes;
        let nodes = Pe::all(npes).map(|pe| factory.build(pe, npes)).collect();
        let fault = cfg.fault.clone().map(FaultState::new);
        SimMachine {
            cfg,
            nodes,
            fault,
            aborted: None,
            // Steady state holds roughly one in-flight message plus one
            // pending Execute per PE; pre-size so early growth never
            // reallocates mid-run.
            heap: BinaryHeap::with_capacity(4 * npes + 64),
            fast: None,
            seq: 0,
            scratch_outbox: Vec::new(),
            busy_until: vec![SimTime::ZERO; npes],
            exec_scheduled: vec![false; npes],
            nic_free: vec![SimTime::ZERO; npes],
            bus_free: SimTime::ZERO,
            busy: vec![Cost::ZERO; npes],
            packets: 0,
            bytes: 0,
            events: 0,
            result: None,
            stopped: false,
            samples: Vec::new(),
            timeline: Vec::new(),
        }
    }

    /// Convenience: build and run in one call.
    pub fn run_factory<F: NodeFactory<Node = N>>(cfg: SimConfig, factory: &F) -> SimReport {
        SimMachine::new(cfg, factory).run()
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time: time.as_nanos(),
            seq,
            kind,
        }));
    }

    /// Schedule an Execute event through the front slot: the earliest of
    /// the pending Executes stays in `fast`, the other goes to the heap.
    fn push_exec(&mut self, time: SimTime, pe: Pe) {
        let seq = self.seq;
        self.seq += 1;
        let ev = Event {
            time: time.as_nanos(),
            seq,
            kind: EventKind::Execute { pe },
        };
        match &self.fast {
            None => self.fast = Some(ev),
            Some(f) if (ev.time, ev.seq) < (f.time, f.seq) => {
                let demoted = self.fast.replace(ev).expect("checked above");
                self.heap.push(Reverse(demoted));
            }
            Some(_) => self.heap.push(Reverse(ev)),
        }
    }

    /// Pop the globally next event — the smaller `(time, seq)` of the
    /// front slot and the heap top. Seqs are unique, so the order is
    /// total and identical to a single heap's.
    fn next_event(&mut self) -> Option<Event> {
        match (&self.fast, self.heap.peek()) {
            (Some(f), Some(Reverse(h))) => {
                if (f.time, f.seq) < (h.time, h.seq) {
                    self.fast.take()
                } else {
                    self.heap.pop().map(|Reverse(e)| e)
                }
            }
            (Some(_), None) => self.fast.take(),
            (None, _) => self.heap.pop().map(|Reverse(e)| e),
        }
    }

    fn schedule_exec(&mut self, pe: Pe, not_before: SimTime) {
        if !self.exec_scheduled[pe.index()] && self.nodes[pe.index()].has_work() {
            let at = not_before.max(self.busy_until[pe.index()]);
            self.exec_scheduled[pe.index()] = true;
            self.push_exec(at, pe);
        }
    }

    /// Route a message: compute departure (NIC + bus serialization) and
    /// arrival times, consult the fault plan, then schedule the arrival
    /// event(s).
    fn route(&mut self, from: Pe, to: Pe, bytes: u32, payload: Payload, ready: SimTime) {
        let hops = self.cfg.topology.distance(from, to, self.cfg.npes);
        let inj = self.cfg.cost.injection(bytes, hops);
        let mut depart = ready.max(self.nic_free[from.index()]);
        if hops > 0 && self.cfg.topology.is_shared_medium() {
            depart = depart.max(self.bus_free);
            self.bus_free = depart + inj;
        }
        self.nic_free[from.index()] = depart + inj;
        let mut arrive = depart + self.cfg.cost.latency(bytes, hops);
        // The send occupied the NIC/bus either way; faults act in flight.
        let mut duplicate = false;
        if hops > 0 {
            if let Some(fs) = &mut self.fault {
                match fs.judge(from, to, depart) {
                    LinkVerdict::Drop | LinkVerdict::OutageDrop => return,
                    LinkVerdict::Deliver {
                        extra,
                        duplicate: dup,
                    } => {
                        arrive = arrive + extra;
                        duplicate = dup;
                    }
                }
            }
        }
        if duplicate {
            // Only replayable payloads can arrive twice; the copy takes
            // one extra network traversal.
            if let Some(r) = payload.downcast_ref::<Replayable>() {
                let copy = std::sync::Arc::clone(&r.0);
                let again = arrive + self.cfg.cost.latency(bytes, hops);
                if let Some(fs) = &mut self.fault {
                    fs.stats.duplicated += 1;
                }
                self.packets += 1;
                self.bytes += bytes as u64;
                self.push(
                    again,
                    EventKind::Arrival {
                        to,
                        pkt: Packet {
                            from,
                            bytes,
                            at_ns: again.as_nanos(),
                            sent_ns: ready.as_nanos(),
                            payload: Box::new(Replayable(copy)),
                        },
                    },
                );
            }
        }
        self.packets += 1;
        self.bytes += bytes as u64;
        self.push(
            arrive,
            EventKind::Arrival {
                to,
                pkt: Packet {
                    from,
                    bytes,
                    at_ns: arrive.as_nanos(),
                    sent_ns: ready.as_nanos(),
                    payload,
                },
            },
        );
    }

    /// Run the simulation to completion (explicit stop or global
    /// quiescence) and report.
    pub fn run(mut self) -> SimReport {
        // Boot every node at t = 0. Boot-time sends depart at t = 0.
        for pe in Pe::all(self.cfg.npes) {
            let outbox = std::mem::take(&mut self.scratch_outbox);
            let mut ctx = SimCtx::at(pe, self.cfg.npes, SimTime::ZERO, outbox);
            self.nodes[pe.index()].boot(&mut ctx);
            let end = SimTime::ZERO + ctx.charged;
            self.busy_until[pe.index()] = end;
            self.busy[pe.index()] += ctx.charged;
            if ctx.stop {
                self.stopped = true;
            }
            if let Some(r) = ctx.deposit {
                self.result = Some(r);
            }
            for (to, bytes, payload) in ctx.outbox.drain(..) {
                self.route(pe, to, bytes, payload, end);
            }
            self.scratch_outbox = ctx.outbox;
            if let Some(after) = ctx.alarm {
                self.push(end + after, EventKind::Alarm { pe });
            }
        }
        for pe in Pe::all(self.cfg.npes) {
            let at = self.busy_until[pe.index()];
            self.schedule_exec(pe, at);
        }
        if let Some(iv) = self.cfg.sample_interval {
            self.push(SimTime::ZERO + iv, EventKind::Sample);
        }

        let mut now = SimTime::ZERO;
        while !self.stopped {
            let Some(ev) = self.next_event() else {
                break;
            };
            self.events += 1;
            if self.events > self.cfg.max_events {
                // Structured abort instead of a panic: the caller gets a
                // full report with `aborted` set and can inspect how far
                // the run got.
                self.aborted = Some(AbortReason::MaxEvents {
                    limit: self.cfg.max_events,
                });
                break;
            }
            now = SimTime(ev.time);
            match ev.kind {
                EventKind::Arrival { to, pkt } => {
                    if let Some(fs) = &mut self.fault {
                        if fs.crashed(to, now) {
                            // A dead PE's NIC accepts nothing.
                            fs.stats.crash_dropped += 1;
                            continue;
                        }
                    }
                    let pkt = Packet {
                        from: pkt.from,
                        bytes: pkt.bytes,
                        at_ns: pkt.at_ns,
                        sent_ns: pkt.sent_ns,
                        payload: Replayable::materialize(pkt.payload),
                    };
                    self.nodes[to.index()].incoming(pkt);
                    self.schedule_exec(to, now);
                }
                EventKind::Execute { pe } => {
                    if let Some(fs) = &mut self.fault {
                        if fs.crashed(pe, now) {
                            self.exec_scheduled[pe.index()] = false;
                            continue;
                        }
                        if let Some(until) = fs.stalled_until(pe, now) {
                            // Frozen: hold the dispatch until the PE
                            // resumes (exec_scheduled stays set).
                            fs.stats.stall_deferrals += 1;
                            self.push_exec(until, pe);
                            continue;
                        }
                    }
                    self.exec_scheduled[pe.index()] = false;
                    let node = &mut self.nodes[pe.index()];
                    if !node.has_work() {
                        continue;
                    }
                    let outbox = std::mem::take(&mut self.scratch_outbox);
                    let mut ctx = SimCtx::at(pe, self.cfg.npes, now, outbox);
                    let ran = node.step(&mut ctx);
                    let cost = match ran {
                        Some(StepKind::User) => self.cfg.cost.dispatch + ctx.charged,
                        Some(StepKind::Control) => self.cfg.cost.ctl_dispatch + ctx.charged,
                        None => ctx.charged,
                    };
                    let end = now + cost;
                    if self.cfg.trace {
                        if let Some(kind) = ran {
                            self.timeline.push(TraceSpan {
                                pe,
                                start_ns: now.as_nanos(),
                                end_ns: end.as_nanos(),
                                kind,
                            });
                        }
                    }
                    self.busy_until[pe.index()] = end;
                    self.busy[pe.index()] += cost;
                    if let Some(r) = ctx.deposit {
                        self.result = Some(r);
                    }
                    if ctx.stop {
                        self.stopped = true;
                        now = end;
                    }
                    for (to, bytes, payload) in ctx.outbox.drain(..) {
                        self.route(pe, to, bytes, payload, end);
                    }
                    self.scratch_outbox = ctx.outbox;
                    if let Some(after) = ctx.alarm {
                        self.push(end + after, EventKind::Alarm { pe });
                    }
                    if !self.stopped {
                        self.schedule_exec(pe, end);
                    } else {
                        break;
                    }
                }
                EventKind::Alarm { pe } => {
                    if let Some(fs) = &mut self.fault {
                        if fs.crashed(pe, now) {
                            continue;
                        }
                        if let Some(until) = fs.stalled_until(pe, now) {
                            // A frozen PE's timers fire once it thaws.
                            self.push(until, EventKind::Alarm { pe });
                            continue;
                        }
                    }
                    // Serialize with handler execution: the alarm handler
                    // starts once the PE is free.
                    let start = now.max(self.busy_until[pe.index()]);
                    let outbox = std::mem::take(&mut self.scratch_outbox);
                    let mut ctx = SimCtx::at(pe, self.cfg.npes, start, outbox);
                    self.nodes[pe.index()].alarm(&mut ctx);
                    let end = start + ctx.charged;
                    self.busy_until[pe.index()] = end;
                    self.busy[pe.index()] += ctx.charged;
                    if let Some(r) = ctx.deposit {
                        self.result = Some(r);
                    }
                    if ctx.stop {
                        self.stopped = true;
                        now = end;
                    }
                    for (to, bytes, payload) in ctx.outbox.drain(..) {
                        self.route(pe, to, bytes, payload, end);
                    }
                    self.scratch_outbox = ctx.outbox;
                    if let Some(after) = ctx.alarm {
                        self.push(end + after, EventKind::Alarm { pe });
                    }
                    if !self.stopped {
                        self.schedule_exec(pe, end);
                    } else {
                        break;
                    }
                }
                EventKind::Sample => {
                    if self.samples.is_empty() {
                        self.samples.reserve(64);
                    }
                    let mut s = BacklogSummary::at(now.as_nanos());
                    for n in &self.nodes {
                        s.push(n.backlog());
                    }
                    self.samples.push(s);
                    // Only keep sampling while there are other events —
                    // otherwise sampling alone would keep the sim alive.
                    if !self.heap.is_empty() || self.fast.is_some() {
                        let iv = self.cfg.sample_interval.expect("sampling enabled");
                        self.push(now + iv, EventKind::Sample);
                    }
                }
            }
        }

        let end_time = self
            .busy_until
            .iter()
            .copied()
            .fold(now, SimTime::max);
        EVENTS_TALLY.with(|c| c.set(c.get() + self.events));
        SimReport {
            end_time,
            result: self.result,
            node_stats: self.nodes.iter().map(|n| n.stats()).collect(),
            busy: self.busy,
            packets: self.packets,
            bytes: self.bytes,
            events: self.events,
            quiesced: !self.stopped && self.aborted.is_none(),
            samples: self.samples,
            timeline: self.timeline,
            aborted: self.aborted,
            faults: self.fault.map(|fs| fs.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachinePreset;
    use crate::program::FnFactory;
    use std::collections::VecDeque;

    /// Test node: relays a counter around the ring of PEs `laps` times,
    /// then PE 0 deposits the hop count and stops.
    struct Relay {
        pe: Pe,
        npes: usize,
        queue: VecDeque<Packet>,
        laps: u32,
        work: Cost,
        hops_seen: u64,
    }

    impl NodeProgram for Relay {
        fn boot(&mut self, net: &mut dyn NetCtx) {
            if self.pe == Pe::ZERO {
                net.send(Pe::from(1 % self.npes), 8, Box::new(0u64));
            }
        }
        fn incoming(&mut self, pkt: Packet) {
            self.queue.push_back(pkt);
        }
        fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
            let pkt = self.queue.pop_front()?;
            let count = *pkt.payload.downcast::<u64>().unwrap();
            self.hops_seen += 1;
            net.charge(self.work);
            let next = (self.pe.index() + 1) % self.npes;
            if self.pe == Pe::ZERO && count + 1 >= (self.laps as u64) * self.npes as u64 {
                net.deposit(Box::new(count + 1));
                net.stop();
            } else {
                net.send(Pe::from(next), 8, Box::new(count + 1));
            }
            Some(StepKind::User)
        }
        fn has_work(&self) -> bool {
            !self.queue.is_empty()
        }
        fn backlog(&self) -> usize {
            self.queue.len()
        }
        fn stats(&self) -> NodeStats {
            let mut s = NodeStats::new();
            s.push("hops", self.hops_seen);
            s
        }
    }

    fn relay_factory(laps: u32, work: Cost) -> FnFactory<impl Fn(Pe, usize) -> Relay> {
        FnFactory(move |pe, npes| Relay {
            pe,
            npes,
            queue: VecDeque::new(),
            laps,
            work,
            hops_seen: 0,
        })
    }

    fn ring_cfg(npes: usize) -> SimConfig {
        SimConfig::new(npes, Topology::Ring, MachinePreset::NcubeLike.cost_model())
    }

    #[test]
    fn relay_completes_and_deposits() {
        let mut rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(3, Cost::micros(10)));
        assert_eq!(rep.take_result::<u64>(), Some(12));
        assert!(!rep.quiesced, "ended by explicit stop");
    }

    #[test]
    fn simulated_time_accounts_for_latency_and_work() {
        let npes = 4;
        let laps = 2u32;
        let work = Cost::micros(10);
        let rep = SimMachine::run_factory(ring_cfg(npes), &relay_factory(laps, work));
        let model = MachinePreset::NcubeLike.cost_model();
        let hops = (laps as u64) * npes as u64; // messages processed
        let per_hop = (model.latency(8, 1) + model.dispatch + work).as_nanos();
        // Every handler executes after exactly one network hop; end time
        // is hops * (latency + dispatch + work), give or take the final
        // stop handler which sends nothing.
        let expect = hops * per_hop;
        let got = rep.end_time.as_nanos();
        assert!(
            got >= expect - per_hop && got <= expect + per_hop,
            "expected about {expect}, got {got}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = SimMachine::run_factory(ring_cfg(8), &relay_factory(5, Cost::micros(3)));
        let r2 = SimMachine::run_factory(ring_cfg(8), &relay_factory(5, Cost::micros(3)));
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.packets, r2.packets);
        assert_eq!(r1.bytes, r2.bytes);
    }

    #[test]
    fn node_stats_collected() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(1, Cost::ZERO));
        let total: u64 = rep
            .node_stats
            .iter()
            .map(|s| s.get("hops").unwrap_or(0))
            .sum();
        assert_eq!(total, 4); // one handler execution per ring position
    }

    #[test]
    fn busy_time_distributed_across_pes() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(4, Cost::micros(50)));
        for pe in 0..4 {
            assert!(rep.busy[pe] > Cost::ZERO, "PE{pe} never worked");
        }
    }

    /// A program that never sends anything quiesces immediately.
    struct Inert;
    impl NodeProgram for Inert {
        fn boot(&mut self, _net: &mut dyn NetCtx) {}
        fn incoming(&mut self, _pkt: Packet) {}
        fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
            None
        }
        fn has_work(&self) -> bool {
            false
        }
    }

    #[test]
    fn inert_program_quiesces_at_time_zero() {
        let cfg = SimConfig::preset(4, MachinePreset::Ideal);
        let rep = SimMachine::run_factory(cfg, &FnFactory(|_, _| Inert));
        assert!(rep.quiesced);
        assert_eq!(rep.end_time, SimTime::ZERO);
        assert_eq!(rep.packets, 0);
    }

    #[test]
    fn sampling_records_backlogs() {
        let cfg = ring_cfg(4).with_sampling(Cost::micros(100));
        let rep = SimMachine::run_factory(cfg, &relay_factory(10, Cost::micros(20)));
        assert!(!rep.samples.is_empty());
        for s in &rep.samples {
            assert_eq!(s.npes, 4);
            assert!(s.max >= s.last);
            assert!(s.idle <= s.npes);
        }
    }

    #[test]
    fn bus_topology_serializes_transfers() {
        // Same program, same costs; bus must not finish faster than the
        // fully-connected network.
        let model = MachinePreset::SharedBusLike.cost_model();
        let bus = SimConfig::new(8, Topology::Bus, model);
        let full = SimConfig::new(8, Topology::FullyConnected, model);
        let f = relay_factory(6, Cost::micros(1));
        let t_bus = SimMachine::run_factory(bus, &f).end_time;
        let t_full = SimMachine::run_factory(full, &f).end_time;
        assert!(t_bus >= t_full);
    }

    #[test]
    fn runaway_program_aborts_with_structured_report() {
        let cfg = ring_cfg(2).with_max_events(100);
        // Relay with enormous lap count never finishes within 100 events.
        let rep = SimMachine::run_factory(cfg, &relay_factory(u32::MAX, Cost::ZERO));
        assert_eq!(rep.aborted, Some(AbortReason::MaxEvents { limit: 100 }));
        assert!(!rep.quiesced, "an aborted run did not quiesce");
        assert!(rep.events > 0 && rep.events <= 101);
    }

    #[test]
    fn event_limit_not_hit_reports_none() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(2, Cost::ZERO));
        assert_eq!(rep.aborted, None);
        assert!(rep.faults.is_none(), "no plan installed");
    }

    #[test]
    fn utilization_between_zero_and_one() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(3, Cost::micros(10)));
        let u = rep.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn faults_off_is_byte_identical_to_no_fault_field() {
        // The zero-cost-when-off claim: a run with `fault: None` must be
        // indistinguishable from the pre-fault-layer simulator.
        let base = SimMachine::run_factory(ring_cfg(8), &relay_factory(4, Cost::micros(2)));
        let mut cfg = ring_cfg(8);
        cfg.fault = None;
        let same = SimMachine::run_factory(cfg, &relay_factory(4, Cost::micros(2)));
        assert_eq!(base.end_time, same.end_time);
        assert_eq!(base.events, same.events);
        assert_eq!(base.packets, same.packets);
        assert_eq!(base.bytes, same.bytes);
    }

    #[test]
    fn noop_fault_plan_changes_nothing_but_reports_stats() {
        let base = SimMachine::run_factory(ring_cfg(8), &relay_factory(4, Cost::micros(2)));
        let cfg = ring_cfg(8).with_faults(crate::fault::FaultPlan::new(1));
        let rep = SimMachine::run_factory(cfg, &relay_factory(4, Cost::micros(2)));
        assert_eq!(base.end_time, rep.end_time);
        assert_eq!(base.events, rep.events);
        let stats = rep.faults.expect("plan installed");
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn same_fault_seed_replays_identically() {
        let cfg = || {
            ring_cfg(8).with_faults(
                crate::fault::FaultPlan::new(0xD00D)
                    .drop(0.0) // drops would strand the unreliable relay
                    .delay(0.3, Cost::micros(40)),
            )
        };
        let a = SimMachine::run_factory(cfg(), &relay_factory(4, Cost::micros(2)));
        let b = SimMachine::run_factory(cfg(), &relay_factory(4, Cost::micros(2)));
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.events, b.events);
        assert_eq!(a.faults, b.faults);
        assert!(a.faults.as_ref().unwrap().delayed > 0, "delays fired");
    }

    #[test]
    fn dropped_packet_strands_unreliable_relay() {
        // Drop everything: the boot-time send vanishes, nothing else
        // moves, and the sim quiesces with a drop on the books.
        let cfg = ring_cfg(4).with_faults(crate::fault::FaultPlan::new(3).drop(1.0));
        let rep = SimMachine::run_factory(cfg, &relay_factory(2, Cost::ZERO));
        assert!(rep.quiesced, "nothing left to do once the packet is gone");
        let stats = rep.faults.expect("plan installed");
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn stall_defers_execution_but_run_completes() {
        let stall_plan = crate::fault::FaultPlan::new(5).stall(
            Pe(1),
            SimTime::ZERO,
            SimTime(Cost::micros(500).as_nanos()),
        );
        let plain = SimMachine::run_factory(ring_cfg(4), &relay_factory(3, Cost::micros(10)));
        let cfg = ring_cfg(4).with_faults(stall_plan);
        let mut rep = SimMachine::run_factory(cfg, &relay_factory(3, Cost::micros(10)));
        assert_eq!(rep.take_result::<u64>(), Some(12), "stall only delays");
        assert!(rep.end_time > plain.end_time, "the stall cost time");
        assert!(rep.faults.unwrap().stall_deferrals > 0);
    }

    #[test]
    fn crashed_pe_black_holes_the_relay() {
        // PE 1 dies immediately; the token sent to it at boot is lost.
        let cfg =
            ring_cfg(4).with_faults(crate::fault::FaultPlan::new(7).crash(Pe(1), SimTime::ZERO));
        let rep = SimMachine::run_factory(cfg, &relay_factory(2, Cost::ZERO));
        assert!(rep.quiesced);
        assert!(rep.faults.unwrap().crash_dropped >= 1);
    }

    #[test]
    fn outage_window_blocks_the_link() {
        // Ring 0→1 link dead for the whole run: the relay never advances.
        let cfg = ring_cfg(4).with_faults(crate::fault::FaultPlan::new(0).outage(
            Pe(0),
            Pe(1),
            SimTime::ZERO,
            SimTime(u64::MAX),
        ));
        let rep = SimMachine::run_factory(cfg, &relay_factory(2, Cost::ZERO));
        assert!(rep.quiesced);
        assert_eq!(rep.faults.unwrap().outage_dropped, 1);
    }

    /// Node that sends itself a replayable packet and counts deliveries —
    /// exercises duplication and the alarm plumbing.
    struct DupCounter {
        pe: Pe,
        got: u64,
        alarms: u64,
        queue: std::collections::VecDeque<Packet>,
    }

    impl NodeProgram for DupCounter {
        fn boot(&mut self, net: &mut dyn NetCtx) {
            if self.pe == Pe::ZERO {
                net.send(Pe(1), 16, crate::program::Replayable::wrap(|| Box::new(1u64)));
                net.set_alarm(Cost::micros(100));
            }
        }
        fn incoming(&mut self, pkt: Packet) {
            self.queue.push_back(pkt);
        }
        fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
            let pkt = self.queue.pop_front()?;
            let v = *pkt.payload.downcast::<u64>().expect("materialized payload");
            self.got += v;
            Some(StepKind::User)
        }
        fn has_work(&self) -> bool {
            !self.queue.is_empty()
        }
        fn alarm(&mut self, net: &mut dyn NetCtx) {
            self.alarms += 1;
            if self.alarms < 3 {
                net.set_alarm(Cost::micros(100));
            }
        }
        fn stats(&self) -> NodeStats {
            let mut s = NodeStats::new();
            s.push("got", self.got);
            s.push("alarms", self.alarms);
            s
        }
    }

    fn dup_factory() -> FnFactory<impl Fn(Pe, usize) -> DupCounter> {
        FnFactory(|pe, _| DupCounter {
            pe,
            got: 0,
            alarms: 0,
            queue: std::collections::VecDeque::new(),
        })
    }

    #[test]
    fn replayable_payload_is_materialized_once_without_faults() {
        let cfg = SimConfig::preset(2, MachinePreset::Ideal);
        let rep = SimMachine::run_factory(cfg, &FnFactory(|pe, _| DupCounter {
            pe,
            got: 0,
            alarms: 9, // suppress further alarms
            queue: std::collections::VecDeque::new(),
        }));
        assert_eq!(rep.node_stats[1].get("got"), Some(1));
    }

    #[test]
    fn duplication_delivers_replayable_twice() {
        let cfg = SimConfig::preset(2, MachinePreset::Ideal)
            .with_faults(crate::fault::FaultPlan::new(11).duplicate(1.0));
        let rep = SimMachine::run_factory(cfg, &dup_factory());
        assert_eq!(rep.node_stats[1].get("got"), Some(2), "copy delivered");
        assert_eq!(rep.faults.unwrap().duplicated, 1);
    }

    #[test]
    fn alarms_fire_and_reschedule() {
        let cfg = SimConfig::preset(2, MachinePreset::Ideal);
        let rep = SimMachine::run_factory(cfg, &dup_factory());
        assert_eq!(rep.node_stats[0].get("alarms"), Some(3));
        assert!(rep.quiesced, "alarm chain terminates");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_pe_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn boot(&mut self, net: &mut dyn NetCtx) {
                net.send(Pe(99), 1, Box::new(()));
            }
            fn incoming(&mut self, _pkt: Packet) {}
            fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
                None
            }
            fn has_work(&self) -> bool {
                false
            }
        }
        let cfg = SimConfig::preset(2, MachinePreset::Ideal);
        let _ = SimMachine::run_factory(cfg, &FnFactory(|_, _| Bad));
    }
}
