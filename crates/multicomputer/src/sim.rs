//! Deterministic discrete-event simulation of a nonshared-memory
//! multicomputer.
//!
//! This is the substitute for the paper's NCUBE/2 and iPSC/2 testbeds: a
//! sequential event-driven simulator that executes a [`NodeProgram`] on
//! `P` simulated PEs, advancing a virtual clock according to the
//! [`CostModel`] and the compute time handlers charge. Because the event
//! order is a pure function of the configuration and the node programs'
//! behavior, runs are exactly reproducible — the property the experiment
//! tables rely on.
//!
//! ## Timing model
//!
//! * Executing a message costs `dispatch + charged` where `charged` is
//!   whatever the handler accumulated through [`NetCtx::charge`]. A PE
//!   executes one message at a time.
//! * A message of `b` bytes from PE `s` to PE `d` at distance `h` departs
//!   when the handler ends and the sender's network interface is free
//!   (back-to-back sends serialize for `injection(b, h)` each), then
//!   arrives `latency(b, h)` later. Messages between the same ordered PE
//!   pair are never reordered.
//! * On a shared-medium topology ([`Topology::Bus`]) all transfers
//!   additionally serialize through one global bus: each message occupies
//!   the bus for its injection time, modeling Sequent-style bus
//!   contention.
//!
//! The simulation ends when a handler calls [`NetCtx::stop`], or when no
//! events remain and no node has work (global quiescence — reported via
//! [`SimReport::quiesced`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cost::CostModel;
use crate::pe::Pe;
use crate::program::{NetCtx, NodeFactory, NodeProgram, Packet, Payload, StepKind};
use crate::trace::TraceSpan;
use crate::stats::NodeStats;
use crate::time::{Cost, SimTime};
use crate::topology::Topology;

/// Configuration of a simulated machine.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processing elements.
    pub npes: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Network / dispatch cost model.
    pub cost: CostModel,
    /// If set, sample every PE's backlog at this simulated interval
    /// (drives the load-evolution figures).
    pub sample_interval: Option<Cost>,
    /// Safety valve: abort after this many events (defaults to
    /// `u64::MAX`).
    pub max_events: u64,
    /// Record one [`TraceSpan`] per executed step (for utilization
    /// profiles — the mini-Projections view).
    pub trace: bool,
}

impl SimConfig {
    /// A machine with `npes` PEs, the given topology and cost model, no
    /// sampling.
    pub fn new(npes: usize, topology: Topology, cost: CostModel) -> Self {
        assert!(npes > 0, "machine needs at least one PE");
        SimConfig {
            npes,
            topology,
            cost,
            sample_interval: None,
            max_events: u64::MAX,
            trace: false,
        }
    }

    /// Preset-based convenience constructor.
    pub fn preset(npes: usize, preset: crate::cost::MachinePreset) -> Self {
        SimConfig::new(npes, preset.topology(npes), preset.cost_model())
    }

    /// Enable backlog sampling at `interval`.
    pub fn with_sampling(mut self, interval: Cost) -> Self {
        assert!(interval > Cost::ZERO, "sampling interval must be positive");
        self.sample_interval = Some(interval);
        self
    }

    /// Enable execution-span tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Result of a simulated run.
pub struct SimReport {
    /// Simulated completion time.
    pub end_time: SimTime,
    /// The last payload a handler deposited, if any.
    pub result: Option<Payload>,
    /// Per-PE counters reported by the nodes.
    pub node_stats: Vec<NodeStats>,
    /// Per-PE busy time (dispatch + handler execution).
    pub busy: Vec<Cost>,
    /// Total packets delivered.
    pub packets: u64,
    /// Total bytes carried by delivered packets.
    pub bytes: u64,
    /// Total events processed (stable across identical runs —
    /// the determinism tests compare this).
    pub events: u64,
    /// True if the run ended by global quiescence rather than an explicit
    /// `stop`.
    pub quiesced: bool,
    /// Backlog samples `(time, per-PE backlog)` if sampling was enabled.
    pub samples: Vec<(SimTime, Vec<usize>)>,
    /// Execution spans, if tracing was enabled.
    pub timeline: Vec<TraceSpan>,
}

impl SimReport {
    /// Downcast the deposited result.
    pub fn result_as<T: 'static>(&self) -> Option<&T> {
        self.result.as_deref().and_then(|r| r.downcast_ref::<T>())
    }

    /// Take and downcast the deposited result.
    pub fn take_result<T: 'static>(&mut self) -> Option<T> {
        let r = self.result.take()?;
        match r.downcast::<T>() {
            Ok(b) => Some(*b),
            Err(r) => {
                self.result = Some(r);
                None
            }
        }
    }

    /// Mean PE utilization: busy time / (P * end_time).
    pub fn utilization(&self) -> f64 {
        let span = self.end_time.as_nanos();
        if span == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy.iter().map(|c| c.as_nanos()).sum();
        busy as f64 / (span as f64 * self.busy.len() as f64)
    }
}

enum EventKind {
    Arrival { to: Pe, pkt: Packet },
    Execute { pe: Pe },
    Sample,
}

struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// `NetCtx` for one handler execution on the simulator: buffers sends,
/// accumulates charged time.
struct SimCtx {
    me: Pe,
    npes: usize,
    now: SimTime,
    charged: Cost,
    outbox: Vec<(Pe, u32, Payload)>,
    stop: bool,
    deposit: Option<Payload>,
}

impl NetCtx for SimCtx {
    fn me(&self) -> Pe {
        self.me
    }
    fn num_pes(&self) -> usize {
        self.npes
    }
    fn now_ns(&self) -> u64 {
        self.now.as_nanos()
    }
    fn send(&mut self, to: Pe, bytes: u32, payload: Payload) {
        assert!(to.index() < self.npes, "send to PE out of range");
        self.outbox.push((to, bytes, payload));
    }
    fn charge(&mut self, cost: Cost) {
        self.charged += cost;
    }
    fn stop(&mut self) {
        self.stop = true;
    }
    fn deposit(&mut self, result: Payload) {
        self.deposit = Some(result);
    }
}

/// The discrete-event simulated machine.
///
/// Owns the nodes and the event queue; [`SimMachine::run`] drives the
/// simulation to completion and returns a [`SimReport`].
pub struct SimMachine<N: NodeProgram> {
    cfg: SimConfig,
    nodes: Vec<N>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Earliest instant each PE is free to start the next handler.
    busy_until: Vec<SimTime>,
    /// Whether an Execute event is pending for each PE.
    exec_scheduled: Vec<bool>,
    /// Earliest instant each PE's network interface is free.
    nic_free: Vec<SimTime>,
    /// Earliest instant the shared bus is free (Bus topology only).
    bus_free: SimTime,
    busy: Vec<Cost>,
    packets: u64,
    bytes: u64,
    events: u64,
    result: Option<Payload>,
    stopped: bool,
    samples: Vec<(SimTime, Vec<usize>)>,
    timeline: Vec<TraceSpan>,
}

impl<N: NodeProgram> SimMachine<N> {
    /// Build the machine, constructing one node per PE from `factory`.
    pub fn new<F: NodeFactory<Node = N>>(cfg: SimConfig, factory: &F) -> Self {
        let npes = cfg.npes;
        let nodes = Pe::all(npes).map(|pe| factory.build(pe, npes)).collect();
        SimMachine {
            cfg,
            nodes,
            heap: BinaryHeap::new(),
            seq: 0,
            busy_until: vec![SimTime::ZERO; npes],
            exec_scheduled: vec![false; npes],
            nic_free: vec![SimTime::ZERO; npes],
            bus_free: SimTime::ZERO,
            busy: vec![Cost::ZERO; npes],
            packets: 0,
            bytes: 0,
            events: 0,
            result: None,
            stopped: false,
            samples: Vec::new(),
            timeline: Vec::new(),
        }
    }

    /// Convenience: build and run in one call.
    pub fn run_factory<F: NodeFactory<Node = N>>(cfg: SimConfig, factory: &F) -> SimReport {
        SimMachine::new(cfg, factory).run()
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time: time.as_nanos(),
            seq,
            kind,
        }));
    }

    fn schedule_exec(&mut self, pe: Pe, not_before: SimTime) {
        if !self.exec_scheduled[pe.index()] && self.nodes[pe.index()].has_work() {
            let at = not_before.max(self.busy_until[pe.index()]);
            self.exec_scheduled[pe.index()] = true;
            self.push(at, EventKind::Execute { pe });
        }
    }

    /// Route a message: compute departure (NIC + bus serialization) and
    /// arrival times, then schedule the arrival event.
    fn route(&mut self, from: Pe, to: Pe, bytes: u32, payload: Payload, ready: SimTime) {
        let hops = self.cfg.topology.distance(from, to, self.cfg.npes);
        let inj = self.cfg.cost.injection(bytes, hops);
        let mut depart = ready.max(self.nic_free[from.index()]);
        if hops > 0 && self.cfg.topology.is_shared_medium() {
            depart = depart.max(self.bus_free);
            self.bus_free = depart + inj;
        }
        self.nic_free[from.index()] = depart + inj;
        let arrive = depart + self.cfg.cost.latency(bytes, hops);
        self.packets += 1;
        self.bytes += bytes as u64;
        self.push(
            arrive,
            EventKind::Arrival {
                to,
                pkt: Packet {
                    from,
                    bytes,
                    payload,
                },
            },
        );
    }

    /// Run the simulation to completion (explicit stop or global
    /// quiescence) and report.
    pub fn run(mut self) -> SimReport {
        // Boot every node at t = 0. Boot-time sends depart at t = 0.
        for pe in Pe::all(self.cfg.npes) {
            let mut ctx = SimCtx {
                me: pe,
                npes: self.cfg.npes,
                now: SimTime::ZERO,
                charged: Cost::ZERO,
                outbox: Vec::new(),
                stop: false,
                deposit: None,
            };
            self.nodes[pe.index()].boot(&mut ctx);
            let end = SimTime::ZERO + ctx.charged;
            self.busy_until[pe.index()] = end;
            self.busy[pe.index()] += ctx.charged;
            if ctx.stop {
                self.stopped = true;
            }
            if let Some(r) = ctx.deposit {
                self.result = Some(r);
            }
            for (to, bytes, payload) in ctx.outbox {
                self.route(pe, to, bytes, payload, end);
            }
        }
        for pe in Pe::all(self.cfg.npes) {
            let at = self.busy_until[pe.index()];
            self.schedule_exec(pe, at);
        }
        if let Some(iv) = self.cfg.sample_interval {
            self.push(SimTime::ZERO + iv, EventKind::Sample);
        }

        let mut now = SimTime::ZERO;
        while !self.stopped {
            let Some(Reverse(ev)) = self.heap.pop() else {
                break;
            };
            self.events += 1;
            if self.events > self.cfg.max_events {
                panic!(
                    "simulation exceeded max_events = {} (runaway program?)",
                    self.cfg.max_events
                );
            }
            now = SimTime(ev.time);
            match ev.kind {
                EventKind::Arrival { to, pkt } => {
                    self.nodes[to.index()].incoming(pkt);
                    self.schedule_exec(to, now);
                }
                EventKind::Execute { pe } => {
                    self.exec_scheduled[pe.index()] = false;
                    let node = &mut self.nodes[pe.index()];
                    if !node.has_work() {
                        continue;
                    }
                    let mut ctx = SimCtx {
                        me: pe,
                        npes: self.cfg.npes,
                        now,
                        charged: Cost::ZERO,
                        outbox: Vec::new(),
                        stop: false,
                        deposit: None,
                    };
                    let ran = node.step(&mut ctx);
                    let cost = match ran {
                        Some(StepKind::User) => self.cfg.cost.dispatch + ctx.charged,
                        Some(StepKind::Control) => self.cfg.cost.ctl_dispatch + ctx.charged,
                        None => ctx.charged,
                    };
                    let end = now + cost;
                    if self.cfg.trace {
                        if let Some(kind) = ran {
                            self.timeline.push(TraceSpan {
                                pe,
                                start_ns: now.as_nanos(),
                                end_ns: end.as_nanos(),
                                kind,
                            });
                        }
                    }
                    self.busy_until[pe.index()] = end;
                    self.busy[pe.index()] += cost;
                    if let Some(r) = ctx.deposit {
                        self.result = Some(r);
                    }
                    if ctx.stop {
                        self.stopped = true;
                        now = end;
                    }
                    for (to, bytes, payload) in ctx.outbox {
                        self.route(pe, to, bytes, payload, end);
                    }
                    if !self.stopped {
                        self.schedule_exec(pe, end);
                    } else {
                        break;
                    }
                }
                EventKind::Sample => {
                    let backlog: Vec<usize> = self.nodes.iter().map(|n| n.backlog()).collect();
                    self.samples.push((now, backlog));
                    // Only keep sampling while there are other events —
                    // otherwise sampling alone would keep the sim alive.
                    if !self.heap.is_empty() {
                        let iv = self.cfg.sample_interval.expect("sampling enabled");
                        self.push(now + iv, EventKind::Sample);
                    }
                }
            }
        }

        let end_time = self
            .busy_until
            .iter()
            .copied()
            .fold(now, SimTime::max);
        SimReport {
            end_time,
            result: self.result,
            node_stats: self.nodes.iter().map(|n| n.stats()).collect(),
            busy: self.busy,
            packets: self.packets,
            bytes: self.bytes,
            events: self.events,
            quiesced: !self.stopped,
            samples: self.samples,
            timeline: self.timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MachinePreset;
    use crate::program::FnFactory;
    use std::collections::VecDeque;

    /// Test node: relays a counter around the ring of PEs `laps` times,
    /// then PE 0 deposits the hop count and stops.
    struct Relay {
        pe: Pe,
        npes: usize,
        queue: VecDeque<Packet>,
        laps: u32,
        work: Cost,
        hops_seen: u64,
    }

    impl NodeProgram for Relay {
        fn boot(&mut self, net: &mut dyn NetCtx) {
            if self.pe == Pe::ZERO {
                net.send(Pe::from(1 % self.npes), 8, Box::new(0u64));
            }
        }
        fn incoming(&mut self, pkt: Packet) {
            self.queue.push_back(pkt);
        }
        fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
            let pkt = self.queue.pop_front()?;
            let count = *pkt.payload.downcast::<u64>().unwrap();
            self.hops_seen += 1;
            net.charge(self.work);
            let next = (self.pe.index() + 1) % self.npes;
            if self.pe == Pe::ZERO && count + 1 >= (self.laps as u64) * self.npes as u64 {
                net.deposit(Box::new(count + 1));
                net.stop();
            } else {
                net.send(Pe::from(next), 8, Box::new(count + 1));
            }
            Some(StepKind::User)
        }
        fn has_work(&self) -> bool {
            !self.queue.is_empty()
        }
        fn backlog(&self) -> usize {
            self.queue.len()
        }
        fn stats(&self) -> NodeStats {
            let mut s = NodeStats::new();
            s.push("hops", self.hops_seen);
            s
        }
    }

    fn relay_factory(laps: u32, work: Cost) -> FnFactory<impl Fn(Pe, usize) -> Relay> {
        FnFactory(move |pe, npes| Relay {
            pe,
            npes,
            queue: VecDeque::new(),
            laps,
            work,
            hops_seen: 0,
        })
    }

    fn ring_cfg(npes: usize) -> SimConfig {
        SimConfig::new(npes, Topology::Ring, MachinePreset::NcubeLike.cost_model())
    }

    #[test]
    fn relay_completes_and_deposits() {
        let mut rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(3, Cost::micros(10)));
        assert_eq!(rep.take_result::<u64>(), Some(12));
        assert!(!rep.quiesced, "ended by explicit stop");
    }

    #[test]
    fn simulated_time_accounts_for_latency_and_work() {
        let npes = 4;
        let laps = 2u32;
        let work = Cost::micros(10);
        let rep = SimMachine::run_factory(ring_cfg(npes), &relay_factory(laps, work));
        let model = MachinePreset::NcubeLike.cost_model();
        let hops = (laps as u64) * npes as u64; // messages processed
        let per_hop = (model.latency(8, 1) + model.dispatch + work).as_nanos();
        // Every handler executes after exactly one network hop; end time
        // is hops * (latency + dispatch + work), give or take the final
        // stop handler which sends nothing.
        let expect = hops * per_hop;
        let got = rep.end_time.as_nanos();
        assert!(
            got >= expect - per_hop && got <= expect + per_hop,
            "expected about {expect}, got {got}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = SimMachine::run_factory(ring_cfg(8), &relay_factory(5, Cost::micros(3)));
        let r2 = SimMachine::run_factory(ring_cfg(8), &relay_factory(5, Cost::micros(3)));
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.packets, r2.packets);
        assert_eq!(r1.bytes, r2.bytes);
    }

    #[test]
    fn node_stats_collected() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(1, Cost::ZERO));
        let total: u64 = rep
            .node_stats
            .iter()
            .map(|s| s.get("hops").unwrap_or(0))
            .sum();
        assert_eq!(total, 4); // one handler execution per ring position
    }

    #[test]
    fn busy_time_distributed_across_pes() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(4, Cost::micros(50)));
        for pe in 0..4 {
            assert!(rep.busy[pe] > Cost::ZERO, "PE{pe} never worked");
        }
    }

    /// A program that never sends anything quiesces immediately.
    struct Inert;
    impl NodeProgram for Inert {
        fn boot(&mut self, _net: &mut dyn NetCtx) {}
        fn incoming(&mut self, _pkt: Packet) {}
        fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
            None
        }
        fn has_work(&self) -> bool {
            false
        }
    }

    #[test]
    fn inert_program_quiesces_at_time_zero() {
        let cfg = SimConfig::preset(4, MachinePreset::Ideal);
        let rep = SimMachine::run_factory(cfg, &FnFactory(|_, _| Inert));
        assert!(rep.quiesced);
        assert_eq!(rep.end_time, SimTime::ZERO);
        assert_eq!(rep.packets, 0);
    }

    #[test]
    fn sampling_records_backlogs() {
        let cfg = ring_cfg(4).with_sampling(Cost::micros(100));
        let rep = SimMachine::run_factory(cfg, &relay_factory(10, Cost::micros(20)));
        assert!(!rep.samples.is_empty());
        for (_, backlog) in &rep.samples {
            assert_eq!(backlog.len(), 4);
        }
    }

    #[test]
    fn bus_topology_serializes_transfers() {
        // Same program, same costs; bus must not finish faster than the
        // fully-connected network.
        let model = MachinePreset::SharedBusLike.cost_model();
        let bus = SimConfig::new(8, Topology::Bus, model);
        let full = SimConfig::new(8, Topology::FullyConnected, model);
        let f = relay_factory(6, Cost::micros(1));
        let t_bus = SimMachine::run_factory(bus, &f).end_time;
        let t_full = SimMachine::run_factory(full, &f).end_time;
        assert!(t_bus >= t_full);
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn runaway_program_hits_event_limit() {
        let mut cfg = ring_cfg(2);
        cfg.max_events = 100;
        // Relay with enormous lap count never finishes within 100 events.
        let _ = SimMachine::run_factory(cfg, &relay_factory(u32::MAX, Cost::ZERO));
    }

    #[test]
    fn utilization_between_zero_and_one() {
        let rep = SimMachine::run_factory(ring_cfg(4), &relay_factory(3, Cost::micros(10)));
        let u = rep.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_pe_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn boot(&mut self, net: &mut dyn NetCtx) {
                net.send(Pe(99), 1, Box::new(()));
            }
            fn incoming(&mut self, _pkt: Packet) {}
            fn step(&mut self, _net: &mut dyn NetCtx) -> Option<StepKind> {
                None
            }
            fn has_work(&self) -> bool {
                false
            }
        }
        let cfg = SimConfig::preset(2, MachinePreset::Ideal);
        let _ = SimMachine::run_factory(cfg, &FnFactory(|_, _| Bad));
    }
}
