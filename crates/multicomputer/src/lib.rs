//! # multicomputer — the machine substrate
//!
//! The SC '91 Chare Kernel ran on 1991 hardware: nonshared-memory
//! multicomputers (NCUBE/2 hypercube, Intel iPSC/2) and shared-memory
//! multiprocessors (Sequent Symmetry, Encore Multimax). This crate is the
//! stand-in for that hardware layer. It provides:
//!
//! * [`Pe`] — processing-element identifiers, and [`topology`] — the
//!   interconnect graphs of the machines the paper evaluated on
//!   (hypercube, 2-D mesh, ring, fully connected, shared bus);
//! * [`cost`] — a per-message network cost model
//!   (`alpha + bytes * beta + hops * gamma`) with presets approximating
//!   the paper's machines;
//! * [`sim`] — a deterministic discrete-event simulator
//!   ([`sim::SimMachine`]) that executes a message-driven node program on
//!   `P` simulated PEs and reports simulated completion time, per-PE busy
//!   time and message statistics. This is how we reproduce speedup curves
//!   up to 256 PEs on a laptop;
//! * [`thread`] — a real-parallel backend ([`thread::ThreadMachine`]) with
//!   one OS thread per PE and channel-based message transport, standing in
//!   for the shared-memory ports and used for wall-clock benchmarks.
//!
//! The runtime built on top (the `chare_kernel` crate) is written against
//! the [`program::NodeProgram`] / [`program::NetCtx`] interface and runs
//! unmodified on both backends — exactly the machine-independence claim of
//! the paper.
//!
//! ## Execution model
//!
//! Each PE alternates between two operations driven by the machine:
//!
//! 1. [`program::NodeProgram::incoming`] — a packet
//!    has arrived; the node files it into its internal queues (cheap, no
//!    user code runs);
//! 2. [`program::NodeProgram::step`] — the node picks
//!    one queued message and executes its handler to completion. Handlers
//!    may send packets and charge simulated compute time through the
//!    [`program::NetCtx`] passed in.
//!
//! On the simulator, time advances per the cost model and the charges made
//! by handlers; on the thread backend, real time is the cost and charges
//! are ignored.

pub mod cost;
pub mod fault;
pub mod pe;
pub mod program;
pub mod sim;
pub mod stats;
#[cfg(feature = "threads")]
pub mod thread;
pub mod time;
pub mod topology;
pub mod trace;

pub use cost::{CostModel, MachinePreset};
pub use fault::{FaultClass, FaultPlan, FaultRng, FaultStats, LinkOutage, PeFault};
pub use pe::Pe;
pub use program::{
    FnFactory, NetCtx, NodeFactory, NodeProgram, Packet, Payload, Replayable, StepKind,
};
pub use sim::{take_events_tally, AbortReason, SimConfig, SimMachine, SimReport};
pub use stats::{imbalance, BacklogSummary, NodeStats, StatSummary};
#[cfg(feature = "threads")]
pub use thread::{ThreadConfig, ThreadMachine, ThreadReport};
pub use time::{Cost, SimTime};
pub use trace::{render_profile, utilization_profile, TraceSpan};
pub use topology::Topology;
