//! Property-based tests of the network timing model: per-pair FIFO under
//! arbitrary bursts, monotonicity of latency in message size and
//! distance, and simulator determinism for randomized (but seeded)
//! traffic patterns.

use std::collections::VecDeque;

use multicomputer::{
    FnFactory, MachinePreset, NetCtx, NodeProgram, Packet, Pe, SimConfig, SimMachine, StepKind,
    Topology,
};
use proptest::prelude::*;

/// PE 0 sends a scripted burst of (destination, size) messages in one
/// handler; every other PE records (sender-sequence, arrival-time) and
/// reports at the end.
struct Scripted {
    pe: Pe,
    script: Vec<(u32, u32)>, // (dest, bytes), sequence number = index
    queue: VecDeque<Packet>,
    seen: Vec<(u32, u64)>, // (sequence, arrival ns)
    kicked: bool,
}

impl NodeProgram for Scripted {
    fn boot(&mut self, net: &mut dyn NetCtx) {
        if self.pe == Pe::ZERO {
            net.send(Pe::ZERO, 1, Box::new(u32::MAX));
        }
    }
    fn incoming(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }
    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        let pkt = self.queue.pop_front()?;
        let v = *pkt.payload.downcast::<u32>().unwrap();
        if self.pe == Pe::ZERO && v == u32::MAX && !self.kicked {
            self.kicked = true;
            for (i, &(dest, bytes)) in self.script.iter().enumerate() {
                net.send(Pe(dest), bytes, Box::new(i as u32));
            }
            // Tell every destination how many to expect via a final
            // sentinel... simpler: destinations know via expect field.
        } else {
            // Record and keep; the run ends by global quiescence and the
            // arrivals are read back through `stats`.
            self.seen.push((v, net.now_ns()));
        }
        Some(StepKind::User)
    }
    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }
    fn stats(&self) -> multicomputer::NodeStats {
        let mut s = multicomputer::NodeStats::new();
        // Expose arrivals for post-run inspection: sequence numbers in
        // arrival order, packed.
        for (i, &(seq, _)) in self.seen.iter().enumerate().take(64) {
            let _ = i;
            s.push("arrival", seq as u64);
        }
        s
    }
}

/// Run a scripted burst; returns, per PE, the sender-sequence numbers in
/// arrival order.
fn run_script(script: Vec<(u32, u32)>, npes: usize, topo: Topology) -> Vec<Vec<u32>> {
    let script_arc = std::sync::Arc::new(script);
    let factory = {
        let script_arc = std::sync::Arc::clone(&script_arc);
        FnFactory(move |pe: Pe, _n| Scripted {
            pe,
            script: if pe == Pe::ZERO {
                (*script_arc).clone()
            } else {
                Vec::new()
            },
            queue: VecDeque::new(),
            seen: Vec::new(),
            kicked: false,
        })
    };
    let cfg = SimConfig::new(npes, topo, MachinePreset::NcubeLike.cost_model());
    let rep = SimMachine::run_factory(cfg, &factory);
    rep.node_stats
        .iter()
        .map(|s| {
            s.counters
                .iter()
                .filter(|(n, _)| *n == "arrival")
                .map(|&(_, v)| v as u32)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Messages from PE 0 to any single destination arrive in send
    /// order, whatever the interleaving of sizes and other destinations.
    #[test]
    fn per_pair_fifo_under_random_bursts(
        script in proptest::collection::vec((1u32..6, 1u32..5_000), 1..40),
        topo_pick in 0usize..3,
    ) {
        let topo = match topo_pick {
            0 => Topology::Hypercube,
            1 => Topology::Ring,
            _ => Topology::FullyConnected,
        };
        let arrivals = run_script(script.clone(), 6, topo);
        for (dest, got) in arrivals.iter().enumerate().skip(1) {
            let expected: Vec<u32> = script
                .iter()
                .enumerate()
                .filter(|(_, &(d, _))| d as usize == dest)
                .map(|(i, _)| i as u32)
                .collect();
            // Arrival order must preserve send order (they're all from
            // PE 0).
            prop_assert_eq!(got, &expected, "dest {}", dest);
        }
    }

    /// Identical runs produce identical arrival sequences.
    #[test]
    fn scripted_runs_are_deterministic(
        script in proptest::collection::vec((1u32..5, 1u32..10_000), 1..30),
    ) {
        let a = run_script(script.clone(), 5, Topology::Hypercube);
        let b = run_script(script, 5, Topology::Hypercube);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn latency_monotone_in_bytes_and_distance() {
    let model = MachinePreset::NcubeLike.cost_model();
    let mut last = 0;
    for bytes in [1u32, 10, 100, 1_000, 10_000] {
        let l = model.latency(bytes, 2).as_nanos();
        assert!(l >= last, "latency not monotone in bytes");
        last = l;
    }
    let mut last = 0;
    for hops in 1..8 {
        let l = model.latency(64, hops).as_nanos();
        assert!(l >= last, "latency not monotone in hops");
        last = l;
    }
}
