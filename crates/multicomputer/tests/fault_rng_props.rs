//! Property tests for the fault-injection RNG's distribution contract.
//!
//! The simulation-testing campaign (`ck_desim`) leans on two properties
//! beyond raw determinism:
//!
//! 1. **Decision-stream stability**: every `chance`/`below` call
//!    consumes exactly one draw regardless of its argument — including
//!    the degenerate `chance(0.0)`, `chance(1.0)` and `below(0)` edges.
//!    Without this, toggling one fault class would reshuffle every other
//!    class's decisions and minimized fault plans would not replay.
//! 2. **Unbiasedness within tolerance**: `below(bound)` is uniform
//!    enough that storm envelopes sampled through it cover their ranges,
//!    and `chance(p)` fires at rate `p`.

use multicomputer::FaultRng;
use proptest::prelude::*;

proptest! {
    /// Two rngs fed the same seed stay in lockstep no matter which mix
    /// of `chance`/`below` calls (with arbitrary arguments, including
    /// the degenerate edges) each endured: one call is one draw.
    #[test]
    fn every_call_consumes_exactly_one_draw(
        seed in any::<u64>(),
        calls in proptest::collection::vec((0u8..4, any::<u32>()), 1..64),
    ) {
        let mut a = FaultRng::new(seed);
        let mut b = FaultRng::new(seed);
        for &(kind, arg) in &calls {
            // `a` makes the decision call, `b` burns one raw draw.
            match kind {
                0 => { a.chance(0.0); }
                1 => { a.chance(1.0); }
                2 => { a.chance(f64::from(arg) / f64::from(u32::MAX)); }
                _ => { a.below(u64::from(arg)); }
            }
            b.next_u64();
        }
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// `chance(p)` fires at rate `p` within a generous binomial
    /// tolerance (5 sigma — false-failure odds are negligible while a
    /// mapping bug of even a few percent is caught instantly).
    #[test]
    fn chance_rate_is_unbiased(seed in any::<u64>(), p_pm in 50u32..950) {
        let p = f64::from(p_pm) / 1000.0;
        let n = 20_000u32;
        let mut rng = FaultRng::new(seed);
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64;
        let mean = f64::from(n) * p;
        let sigma = (f64::from(n) * p * (1.0 - p)).sqrt();
        prop_assert!(
            (hits - mean).abs() < 5.0 * sigma,
            "p={p}: {hits} hits, expected {mean} ± {:.1}", 5.0 * sigma
        );
    }

    /// `below(bound)` stays in range and fills 16 equal buckets evenly:
    /// each bucket within 20% of the expected count at 32k draws
    /// (> 7 sigma — far looser than a correct widening-multiply
    /// reduction needs, far tighter than any real bias would pass).
    #[test]
    fn below_is_unbiased_within_tolerance(
        seed in any::<u64>(),
        bound_pick in 0usize..4,
    ) {
        let bound = [16u64, 160, 1 << 20, 1 << 52][bound_pick];
        let n = 32_768usize;
        let mut rng = FaultRng::new(seed);
        let mut buckets = [0u32; 16];
        for _ in 0..n {
            let v = rng.below(bound);
            prop_assert!(v < bound);
            buckets[(v * 16 / bound) as usize] += 1;
        }
        let expect = (n / 16) as f64;
        for (i, &count) in buckets.iter().enumerate() {
            prop_assert!(
                (f64::from(count) - expect).abs() < 0.20 * expect,
                "bucket {i}/{bound}: {count} draws, expected ~{expect}"
            );
        }
    }
}

/// The exact degenerate-edge contract the fault layer documents:
/// `chance(0.0)` is always false, `chance(1.0)` always true, `below(0)`
/// always 0 — and each still consumes its draw (covered above).
#[test]
fn degenerate_arguments_have_fixed_outcomes() {
    let mut rng = FaultRng::new(0xD15E_A5ED);
    for _ in 0..100 {
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5), "clamped below zero");
        assert!(rng.chance(1.5), "clamped above one");
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }
}
