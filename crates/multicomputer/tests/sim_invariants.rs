//! Simulator timing invariants: FIFO per ordered PE pair, NIC injection
//! serialization, bus serialization, local-message fast path, and
//! determinism under sampling.

use std::collections::VecDeque;

use multicomputer::{
    Cost, CostModel, FnFactory, MachinePreset, NetCtx, NodeProgram, Packet, Pe, SimConfig,
    SimMachine, StepKind, Topology,
};

/// PE 0 sends `count` numbered messages to PE 1 in one handler; PE 1
/// records arrival order and inter-arrival times.
struct BurstSender {
    pe: Pe,
    count: u32,
    bytes: u32,
    queue: VecDeque<Packet>,
    arrivals: Vec<(u32, u64)>,
    kicked: bool,
}

impl NodeProgram for BurstSender {
    fn boot(&mut self, net: &mut dyn NetCtx) {
        if self.pe == Pe::ZERO {
            // Self-kick so the burst happens inside one step.
            net.send(Pe::ZERO, 1, Box::new(u32::MAX));
        }
    }
    fn incoming(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }
    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        let pkt = self.queue.pop_front()?;
        let v = *pkt.payload.downcast::<u32>().unwrap();
        if self.pe == Pe::ZERO {
            if !self.kicked {
                self.kicked = true;
                for i in 0..self.count {
                    net.send(Pe(1), self.bytes, Box::new(i));
                }
            }
        } else {
            self.arrivals.push((v, net.now_ns()));
            if self.arrivals.len() == self.count as usize {
                let report: Vec<(u32, u64)> = self.arrivals.clone();
                net.deposit(Box::new(report));
                net.stop();
            }
        }
        Some(StepKind::User)
    }
    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }
}

fn burst(count: u32, bytes: u32, model: CostModel, topo: Topology) -> Vec<(u32, u64)> {
    let factory = FnFactory(move |pe, _n| BurstSender {
        pe,
        count,
        bytes,
        queue: VecDeque::new(),
        arrivals: Vec::new(),
        kicked: false,
    });
    let cfg = SimConfig::new(2, topo, model);
    let mut rep = SimMachine::run_factory(cfg, &factory);
    rep.take_result::<Vec<(u32, u64)>>().expect("arrivals")
}

#[test]
fn messages_between_one_pair_stay_fifo() {
    let model = MachinePreset::NcubeLike.cost_model();
    let arrivals = burst(50, 100, model, Topology::FullyConnected);
    for (i, &(v, _)) in arrivals.iter().enumerate() {
        assert_eq!(v, i as u32, "reordered delivery");
    }
}

#[test]
fn nic_injection_spaces_back_to_back_sends() {
    let model = MachinePreset::NcubeLike.cost_model();
    let bytes = 2_000u32;
    let arrivals = burst(20, bytes, model, Topology::FullyConnected);
    let inject = model.injection(bytes, 1).as_nanos();
    for w in arrivals.windows(2) {
        let gap = w[1].1 - w[0].1;
        assert!(
            gap >= inject,
            "arrivals only {gap}ns apart; injection takes {inject}ns"
        );
    }
}

#[test]
fn big_messages_arrive_later_than_small() {
    let model = MachinePreset::NcubeLike.cost_model();
    let small = burst(1, 10, model, Topology::FullyConnected)[0].1;
    let big = burst(1, 100_000, model, Topology::FullyConnected)[0].1;
    assert!(big > small + 50_000_000, "beta term missing: {small} vs {big}");
}

#[test]
fn bus_and_crossbar_differ_under_load() {
    let model = MachinePreset::SharedBusLike.cost_model();
    let on_bus = burst(30, 5_000, model, Topology::Bus);
    let on_xbar = burst(30, 5_000, model, Topology::FullyConnected);
    let t_bus = on_bus.last().unwrap().1;
    let t_xbar = on_xbar.last().unwrap().1;
    // Same sender NIC bound in this 1->1 pattern, so times are close;
    // the bus must never be faster.
    assert!(t_bus >= t_xbar);
}

// ---------------------------------------------------------------------
// Local messages.
// ---------------------------------------------------------------------

struct SelfLooper {
    remaining: u32,
    queue: VecDeque<Packet>,
}

impl NodeProgram for SelfLooper {
    fn boot(&mut self, net: &mut dyn NetCtx) {
        net.send(Pe::ZERO, 8, Box::new(()));
    }
    fn incoming(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }
    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        let _ = self.queue.pop_front()?;
        if self.remaining == 0 {
            net.deposit(Box::new(net.now_ns()));
            net.stop();
        } else {
            self.remaining -= 1;
            net.send(Pe::ZERO, 8, Box::new(()));
        }
        Some(StepKind::User)
    }
    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }
}

#[test]
fn local_messages_bypass_the_network() {
    let model = MachinePreset::NcubeLike.cost_model();
    let n = 100u32;
    let factory = FnFactory(move |_pe, _n| SelfLooper {
        remaining: n,
        queue: VecDeque::new(),
    });
    let cfg = SimConfig::new(1, Topology::Hypercube, model);
    let mut rep = SimMachine::run_factory(cfg, &factory);
    let end = rep.take_result::<u64>().expect("time");
    // Each hop costs local + dispatch, nothing near alpha.
    let per_hop = (model.local + model.dispatch).as_nanos();
    let bound = (n as u64 + 2) * per_hop;
    assert!(end <= bound, "local loop took {end}ns, bound {bound}ns");
    assert!(end >= (n as u64) * per_hop);
}

// ---------------------------------------------------------------------
// Determinism with sampling enabled.
// ---------------------------------------------------------------------

#[test]
fn sampling_does_not_perturb_the_simulation() {
    let model = MachinePreset::NcubeLike.cost_model();
    let run = |sample: bool| {
        let factory = FnFactory(move |pe, _n| BurstSender {
            pe,
            count: 40,
            bytes: 500,
            queue: VecDeque::new(),
            arrivals: Vec::new(),
            kicked: false,
        });
        let mut cfg = SimConfig::new(2, Topology::FullyConnected, model);
        if sample {
            cfg = cfg.with_sampling(Cost::micros(50));
        }
        let mut rep = SimMachine::run_factory(cfg, &factory);
        rep.take_result::<Vec<(u32, u64)>>().expect("arrivals")
    };
    assert_eq!(run(false), run(true), "sampling changed message timing");
}
