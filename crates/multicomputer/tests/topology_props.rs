//! Property-based tests of the interconnect topologies: metric axioms,
//! neighbor consistency, diameter bounds — for arbitrary machine sizes.

use multicomputer::{topology::hypercube_dims, Pe, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Hypercube),
        Just(Topology::Ring),
        Just(Topology::FullyConnected),
        Just(Topology::Bus),
        (1usize..8, 1usize..8).prop_map(|(r, c)| Topology::Mesh2D { rows: r, cols: c }),
    ]
}

/// Machine size valid for the topology (meshes need rows*cols >= npes).
fn valid_npes(topo: &Topology) -> impl Strategy<Value = usize> {
    let max = match topo {
        Topology::Mesh2D { rows, cols } => rows * cols,
        _ => 48,
    };
    1..=max.max(1)
}

proptest! {
    #[test]
    fn distance_is_a_metric((topo, npes, a, b) in arb_topology()
        .prop_flat_map(|t| (Just(t.clone()), valid_npes(&t)))
        .prop_flat_map(|(t, n)| (Just(t), Just(n), 0..n, 0..n)))
    {
        let a = Pe::from(a);
        let b = Pe::from(b);
        let d_ab = topo.distance(a, b, npes);
        let d_ba = topo.distance(b, a, npes);
        // Symmetry.
        prop_assert_eq!(d_ab, d_ba);
        // Identity of indiscernibles.
        prop_assert_eq!(d_ab == 0, a == b);
    }

    #[test]
    fn triangle_inequality((topo, npes, a, b, c) in arb_topology()
        .prop_flat_map(|t| (Just(t.clone()), valid_npes(&t)))
        .prop_flat_map(|(t, n)| (Just(t), Just(n), 0..n, 0..n, 0..n)))
    {
        let (a, b, c) = (Pe::from(a), Pe::from(b), Pe::from(c));
        // Mesh/ring/hypercube/full/bus distances are all graph metrics.
        prop_assert!(
            topo.distance(a, c, npes)
                <= topo.distance(a, b, npes) + topo.distance(b, c, npes)
        );
    }

    #[test]
    fn neighbors_are_mutual((topo, npes, a) in arb_topology()
        .prop_flat_map(|t| (Just(t.clone()), valid_npes(&t)))
        .prop_flat_map(|(t, n)| (Just(t), Just(n), 0..n)))
    {
        let a = Pe::from(a);
        for n in topo.neighbors(a, npes) {
            let back = topo.neighbors(n, npes);
            prop_assert!(back.contains(&a), "{a:?} -> {n:?} not mutual");
        }
    }

    #[test]
    fn neighbors_unique_and_exclude_self((topo, npes, a) in arb_topology()
        .prop_flat_map(|t| (Just(t.clone()), valid_npes(&t)))
        .prop_flat_map(|(t, n)| (Just(t), Just(n), 0..n)))
    {
        let a = Pe::from(a);
        let ns = topo.neighbors(a, npes);
        let set: std::collections::HashSet<_> = ns.iter().collect();
        prop_assert_eq!(set.len(), ns.len(), "duplicate neighbors");
        prop_assert!(!ns.contains(&a), "self-neighbor");
    }

    #[test]
    fn diameter_bounds_all_distances((topo, npes) in arb_topology()
        .prop_flat_map(|t| (Just(t.clone()), valid_npes(&t))))
    {
        let d = topo.diameter(npes);
        for a in Pe::all(npes) {
            for b in Pe::all(npes) {
                prop_assert!(topo.distance(a, b, npes) <= d);
            }
        }
    }

    #[test]
    fn hypercube_connected_via_neighbor_walk(npes in 1usize..40) {
        // BFS from PE 0 over neighbor sets must reach every PE even for
        // non-power-of-two machines.
        let topo = Topology::Hypercube;
        let mut seen = vec![false; npes];
        let mut stack = vec![Pe::ZERO];
        seen[0] = true;
        while let Some(pe) = stack.pop() {
            for n in topo.neighbors(pe, npes) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    stack.push(n);
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s), "hypercube disconnected");
    }

    #[test]
    fn hypercube_dims_is_minimal(npes in 1usize..1000) {
        let d = hypercube_dims(npes);
        prop_assert!((1usize << d) >= npes);
        if d > 0 {
            prop_assert!((1usize << (d - 1)) < npes);
        }
    }

    #[test]
    fn square_mesh_is_connected_and_covers(npes in 1usize..40) {
        let topo = Topology::square_mesh(npes);
        let mut seen = vec![false; npes];
        let mut stack = vec![Pe::ZERO];
        seen[0] = true;
        while let Some(pe) = stack.pop() {
            for n in topo.neighbors(pe, npes) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    stack.push(n);
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s), "mesh disconnected");
    }
}
