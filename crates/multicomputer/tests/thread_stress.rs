//! Thread-backend stress: heavy oversubscription, randomized message
//! sizes, all-to-all traffic — correctness must not depend on real
//! parallelism, scheduling luck, or message size.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use multicomputer::{
    FnFactory, NetCtx, NodeProgram, NodeStats, Packet, Pe, StepKind, ThreadConfig, ThreadMachine,
};

/// All-to-all: every PE sends `per_peer` messages to every other PE,
/// acknowledges everything it receives, and a shared counter tracks
/// total deliveries; PE 0 stops the machine when the global count is
/// reached.
struct AllToAll {
    pe: Pe,
    per_peer: u32,
    queue: VecDeque<Packet>,
    received: u64,
    delivered: Arc<AtomicU64>,
    expected_total: u64,
}

impl NodeProgram for AllToAll {
    fn boot(&mut self, net: &mut dyn NetCtx) {
        for peer in Pe::all(net.num_pes()) {
            if peer == self.pe {
                continue;
            }
            for i in 0..self.per_peer {
                // Vary the size so channel behavior sees a mix.
                let bytes = 1 + ((self.pe.0 + i) % 700) * 3;
                net.send(peer, bytes, Box::new(i as u64));
            }
        }
    }
    fn incoming(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }
    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        let pkt = self.queue.pop_front()?;
        let _ = pkt.payload.downcast::<u64>().expect("payload type");
        self.received += 1;
        let total = self.delivered.fetch_add(1, Ordering::Relaxed) + 1;
        if total == self.expected_total {
            net.deposit(Box::new(total));
            net.stop();
        }
        Some(StepKind::User)
    }
    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }
    fn stats(&self) -> NodeStats {
        let mut s = NodeStats::new();
        s.push("received", self.received);
        s
    }
}

#[test]
fn all_to_all_on_heavily_oversubscribed_threads() {
    let npes = 24usize; // far more threads than this host has cores
    let per_peer = 20u32;
    let expected = (npes * (npes - 1)) as u64 * per_peer as u64;
    let delivered = Arc::new(AtomicU64::new(0));
    let factory = {
        let delivered = Arc::clone(&delivered);
        FnFactory(move |pe, _n| AllToAll {
            pe,
            per_peer,
            queue: VecDeque::new(),
            received: 0,
            delivered: Arc::clone(&delivered),
            expected_total: expected,
        })
    };
    let cfg = ThreadConfig::new(npes).with_watchdog(Duration::from_secs(45));
    let mut rep = ThreadMachine::run(cfg, &factory);
    assert!(!rep.timed_out, "all-to-all did not complete");
    assert_eq!(rep.take_result::<u64>(), Some(expected));
    // Every PE received exactly (npes-1) * per_peer... minus whatever
    // was still queued when stop fired; the global count is exact, the
    // per-PE counts are bounded.
    let sum: u64 = rep
        .node_stats
        .iter()
        .map(|s| s.get("received").unwrap_or(0))
        .sum();
    assert!(sum >= expected, "global count {sum} < expected {expected}");
}

#[test]
fn repeated_thread_runs_do_not_interfere() {
    // Back-to-back machines must not leak channels/threads into each
    // other (fresh state per run).
    for _ in 0..5 {
        let npes = 6usize;
        let per_peer = 5u32;
        let expected = (npes * (npes - 1)) as u64 * per_peer as u64;
        let delivered = Arc::new(AtomicU64::new(0));
        let factory = {
            let delivered = Arc::clone(&delivered);
            FnFactory(move |pe, _n| AllToAll {
                pe,
                per_peer,
                queue: VecDeque::new(),
                received: 0,
                delivered: Arc::clone(&delivered),
                expected_total: expected,
            })
        };
        let cfg = ThreadConfig::new(npes).with_watchdog(Duration::from_secs(30));
        let mut rep = ThreadMachine::run(cfg, &factory);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<u64>(), Some(expected));
    }
}
