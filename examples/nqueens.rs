//! N-queens across machine sizes and load balancing strategies.
//!
//! Reproduces, at example scale, the paper's two headline observations
//! about adaptive tree computations: speedup grows with PEs, and the
//! placement strategy matters.
//!
//! ```text
//! cargo run --release --example nqueens [-- n grain]
//! ```

use charm_repro::ck_apps::nqueens::{build, nqueens_seq, QueensParams};
use charm_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u8 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);
    let grain: u8 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let params = QueensParams { n, grain };

    println!("N-queens n={n}, grain={grain}");
    println!("sequential count: {}\n", nqueens_seq(n));

    println!("speedup on the simulated NCUBE-like hypercube (ACWN balancing):");
    let prog = build(params, QueueingStrategy::Fifo, BalanceStrategy::acwn());
    let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut rep = prog.run_sim_preset(p, MachinePreset::NcubeLike);
        let count = rep.take_result::<u64>().unwrap();
        assert_eq!(count, nqueens_seq(n));
        println!(
            "  P={p:>3}  time={:>9.3} ms   speedup={:>6.2}   chares={}",
            rep.time_ns as f64 / 1e6,
            t1 as f64 / rep.time_ns as f64,
            rep.counter_total("chares_created"),
        );
    }

    println!("\nload balancing strategies on 32 PEs:");
    for strat in [
        BalanceStrategy::Local,
        BalanceStrategy::Random,
        BalanceStrategy::CentralManager,
        BalanceStrategy::TokenIdle,
        BalanceStrategy::acwn(),
    ] {
        let prog = build(params, QueueingStrategy::Fifo, strat.clone());
        let rep = prog.run_sim_preset(32, MachinePreset::NcubeLike);
        let sim = rep.sim.as_ref().unwrap();
        println!(
            "  {:<8} time={:>9.3} ms  speedup={:>6.2}  imbalance={:>5.2}  util={:>5.1}%",
            strat.name(),
            rep.time_ns as f64 / 1e6,
            t1 as f64 / rep.time_ns as f64,
            sim.imbalance,
            sim.utilization * 100.0,
        );
    }
}
