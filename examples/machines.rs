//! Machine independence, live: the same N-queens program on every
//! simulated machine preset and on real threads, plus a look at how the
//! interconnect reshapes the same computation.
//!
//! ```text
//! cargo run --release --example machines [-- n grain]
//! ```

use charm_repro::ck_apps::nqueens::{build_default, nqueens_seq, QueensParams};
use charm_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u8 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let grain: u8 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let params = QueensParams { n, grain };
    let want = nqueens_seq(n);

    println!("N-queens n={n} grain={grain}; count = {want}");
    println!("\none program, four machines (16 PEs each):\n");

    let prog = build_default(params);
    for preset in [
        MachinePreset::NcubeLike,
        MachinePreset::IpscLike,
        MachinePreset::SharedBusLike,
        MachinePreset::Ideal,
    ] {
        let t1 = prog.run_sim_preset(1, preset).time_ns;
        let mut rep = prog.run_sim_preset(16, preset);
        let got = rep.take_result::<u64>().expect("count");
        assert_eq!(got, want);
        let sim = rep.sim.as_ref().unwrap();
        let name = format!("{preset:?}");
        println!(
            "  {name:<14} time={:>9.3} ms  speedup={:>5.2}  util={:>5.1}%  {} packets, {} KB",
            rep.time_ns as f64 / 1e6,
            t1 as f64 / rep.time_ns as f64,
            sim.utilization * 100.0,
            sim.packets,
            sim.bytes / 1024,
        );
    }

    println!("\nand on real OS threads (4 PEs):");
    let mut rep = prog.run_threads(4);
    assert!(!rep.timed_out);
    let got = rep.take_result::<u64>().expect("count");
    assert_eq!(got, want);
    println!("  threads        time={:>9.3} ms (wall)", rep.time_ns as f64 / 1e6);

    println!("\nsame answer everywhere — the kernel is the portability layer.");
}
