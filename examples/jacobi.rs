//! Jacobi relaxation on branch-office chares, against its hand-coded
//! message-passing twin.
//!
//! Demonstrates the BOC programming model on a regular grid and prints
//! the kernel-overhead comparison of the paper's Table 6: the same
//! computation written directly on the machine layer, with the ratio of
//! completion times.
//!
//! ```text
//! cargo run --release --example jacobi [-- n iters]
//! ```

use charm_repro::ck_apps::baseline::raw_jacobi;
use charm_repro::ck_apps::jacobi::{build_default, jacobi_seq, JacobiParams};
use charm_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let iters: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(25);
    let params = JacobiParams { n, iters };

    let want = jacobi_seq(params);
    println!("Jacobi {n}x{n}, {iters} sweeps; sequential checksum = {want:.9}\n");

    let prog = build_default(params);
    println!("chare-kernel BOC version on the simulated NCUBE-like machine:");
    let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
    for p in [1usize, 2, 4, 8, 16] {
        let mut rep = prog.run_sim_preset(p, MachinePreset::NcubeLike);
        let got = rep.take_result::<f64>().unwrap();
        let err = (got - want).abs() / want.abs().max(1.0);
        assert!(err < 1e-9, "checksum mismatch at P={p}");
        println!(
            "  P={p:>3}  time={:>10.3} ms  speedup={:>5.2}  checksum ok (rel err {err:.1e})",
            rep.time_ns as f64 / 1e6,
            t1 as f64 / rep.time_ns as f64,
        );
    }

    println!("\nkernel vs hand-coded message passing (8 PEs):");
    let kernel_t = prog.run_sim_preset(8, MachinePreset::NcubeLike).time_ns;
    let (raw_sum, raw_t) = raw_jacobi(params, 8, MachinePreset::NcubeLike);
    assert!((raw_sum - want).abs() / want.abs().max(1.0) < 1e-9);
    println!("  hand-coded: {:>10.3} ms", raw_t as f64 / 1e6);
    println!("  kernel:     {:>10.3} ms", kernel_t as f64 / 1e6);
    println!(
        "  kernel overhead: {:+.1}%",
        (kernel_t as f64 / raw_t as f64 - 1.0) * 100.0
    );
}
