//! Quickstart: the smallest complete Chare Kernel program.
//!
//! A main chare scatters one worker chare per PE; each worker squares
//! its input, contributes to an accumulator, and reports back; the main
//! chare exits with the sum of squares. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use charm_repro::prelude::*;

/// Entry point on the main chare: a worker finished.
const EP_DONE: EpId = EpId(1);
/// Entry point on the main chare: the collected total.
const EP_TOTAL: EpId = EpId(2);

/// Seed of the main chare.
#[derive(Clone)]
struct MainSeed {
    count: u32,
    worker: Kind<Worker>,
    acc: Acc<SumU64>,
}
message!(MainSeed);

/// Seed of a worker chare.
#[derive(Clone, Copy)]
struct WorkerSeed {
    value: u64,
    parent: ChareId,
    acc: Acc<SumU64>,
}
message!(WorkerSeed);

struct Main {
    acc: Acc<SumU64>,
    waiting: u32,
}

impl ChareInit for Main {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        println!(
            "main chare up on PE {} of {}; scattering {} workers",
            ctx.pe(),
            ctx.npes(),
            seed.count
        );
        for i in 0..seed.count {
            // No placement given: the load balancing strategy decides
            // which PE constructs each worker.
            ctx.create(
                seed.worker,
                WorkerSeed {
                    value: (i + 1) as u64,
                    parent: me,
                    acc: seed.acc,
                },
            );
        }
        Main {
            acc: seed.acc,
            waiting: seed.count,
        }
    }
}

impl Chare for Main {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_DONE => {
                let pe = cast::<u32>(msg);
                self.waiting -= 1;
                println!("worker done on PE {pe} ({} left)", self.waiting);
                if self.waiting == 0 {
                    let me = ctx.self_id();
                    ctx.acc_collect(self.acc, Notify::Chare(me, EP_TOTAL));
                }
            }
            EP_TOTAL => {
                let total = cast::<AccResult<u64>>(msg);
                ctx.exit(total.value);
            }
            _ => unreachable!(),
        }
    }
}

struct Worker;

impl ChareInit for Worker {
    type Seed = WorkerSeed;
    fn create(seed: WorkerSeed, ctx: &mut Ctx) -> Self {
        // PE-local accumulation: no communication here.
        ctx.acc_add(seed.acc, seed.value * seed.value);
        ctx.send(seed.parent, EP_DONE, ctx.pe().0);
        ctx.destroy_self();
        Worker
    }
}

impl Chare for Worker {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!("workers receive no messages")
    }
}

fn main() {
    let count = 12u32;

    let mut b = ProgramBuilder::new();
    let worker = b.chare::<Worker>();
    let main = b.chare::<Main>();
    let acc = b.accumulator::<SumU64>();
    b.balance(BalanceStrategy::Random);
    b.main(main, MainSeed { count, worker, acc });
    let program = b.build();

    // Same program, two machines.
    let mut sim = program.run_sim_preset(8, MachinePreset::NcubeLike);
    println!(
        "simulated 8-PE NCUBE-like machine: result = {:?} in {:.3} simulated ms",
        sim.take_result::<u64>().unwrap(),
        sim.time_ns as f64 / 1e6
    );

    let mut real = program.run_threads(4);
    println!(
        "4 real threads: result = {:?} in {:.3} wall ms",
        real.take_result::<u64>().unwrap(),
        real.time_ns as f64 / 1e6
    );

    let expect: u64 = (1..=count as u64).map(|v| v * v).sum();
    assert_eq!(expect, 650);
    println!("expected sum of squares: {expect}");
}
