//! 15-puzzle IDA*: repeated quiescence-detected deepening phases.
//!
//! Shows the phase structure of parallel iterative deepening: each
//! threshold is one message-driven wave ended by quiescence detection,
//! after which the main chare reads two reductions (minimum exceeded
//! f-value → next threshold; node count) and decides whether to go
//! again.
//!
//! ```text
//! cargo run --release --example puzzle [-- scramble seed]
//! ```

use charm_repro::ck_apps::puzzle::{
    build, ida_seq, manhattan, scramble, PuzzleParams, PuzzleResult,
};
use charm_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(52);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    let start = scramble(k, seed);
    println!("15-puzzle scrambled with {k} moves (seed {seed})");
    println!("Manhattan lower bound: {}", manhattan(start));

    let (cost, nodes) = ida_seq(start);
    println!("sequential IDA*: solution length {cost}, {nodes} nodes\n");

    let params = PuzzleParams {
        scramble: k,
        seed,
        split_depth: 7,
    };

    println!("parallel IDA* on the simulated NCUBE-like hypercube:");
    let prog = build(
        params,
        QueueingStrategy::IntPriority,
        BalanceStrategy::Random,
    );
    let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
    for p in [1usize, 4, 16, 64] {
        let mut rep = prog.run_sim_preset(p, MachinePreset::NcubeLike);
        let res: PuzzleResult = rep.take_result().unwrap();
        assert_eq!(res.cost, cost, "parallel IDA* must find the optimum");
        println!(
            "  P={p:>3}  time={:>9.3} ms  speedup={:>5.2}  phases={}  nodes={} ({:.2}x seq)",
            rep.time_ns as f64 / 1e6,
            t1 as f64 / rep.time_ns as f64,
            res.phases,
            res.nodes,
            res.nodes as f64 / nodes as f64,
        );
    }
    println!("\neach phase = spawn wave + quiescence detection + two reductions");
}
