//! TSP branch & bound: the queueing-strategy experiment, live.
//!
//! The same program, run under the four scheduler queue disciplines.
//! Watch the nodes-expanded column: bitvector priorities keep the
//! distributed search close to the sequential node count, while FIFO
//! expands the tree breadth-first and does far more work — the paper's
//! argument for prioritized message-driven scheduling.
//!
//! ```text
//! cargo run --release --example tsp [-- n seed]
//! ```

use charm_repro::ck_apps::tsp::{build, tsp_seq, TspInstance, TspParams, TspResult};
use charm_repro::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u8 = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let params = TspParams {
        n,
        seed,
        seq_tail: 7,
    };

    let inst = TspInstance::random(n as usize, seed);
    let (best, seq_nodes) = tsp_seq(&inst);
    println!("TSP with {n} random cities (seed {seed})");
    println!("greedy tour: {}", inst.greedy_tour());
    println!("optimal tour: {best}  (sequential B&B expanded {seq_nodes} nodes)\n");

    println!("queueing strategies on a 16-PE simulated hypercube:");
    for q in QueueingStrategy::ALL {
        let prog = build(params, q, BalanceStrategy::Random);
        let mut rep = prog.run_sim_preset(16, MachinePreset::NcubeLike);
        let res = rep.take_result::<TspResult>().unwrap();
        assert_eq!(res.best, best, "every strategy must find the optimum");
        println!(
            "  {:<12} nodes={:>9}  ({:>5.2}x sequential)  time={:>9.3} ms",
            q.name(),
            res.nodes,
            res.nodes as f64 / seq_nodes as f64,
            rep.time_ns as f64 / 1e6,
        );
    }

    println!("\nscaling with bitvector priorities + ACWN:");
    let prog = build(
        params,
        QueueingStrategy::BitvecPriority,
        BalanceStrategy::acwn(),
    );
    let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
    for p in [1usize, 4, 16, 64] {
        let mut rep = prog.run_sim_preset(p, MachinePreset::NcubeLike);
        let res = rep.take_result::<TspResult>().unwrap();
        println!(
            "  P={p:>3}  time={:>9.3} ms  speedup={:>6.2}  nodes={}",
            rep.time_ns as f64 / 1e6,
            t1 as f64 / rep.time_ns as f64,
            res.nodes,
        );
    }
}
